"""Miss Status Holding Registers (MSHRs).

MSHRs track cache lines with outstanding misses so that several misses to
the same line are merged into a single request and so that the number of
in-flight misses is bounded.  In this cycle-approximate model the MSHR file
serves two purposes:

* merging — a demand miss to a line that is already outstanding pays only the
  remaining latency of the in-flight request rather than a full round trip;
* throttling — when all entries are busy a new miss must wait for the oldest
  entry to retire, which adds stall cycles (this is what bounds memory-level
  parallelism in the model).
"""

from __future__ import annotations

from typing import Dict


class MSHRFile:
    """A small fully-associative file of MSHR entries.

    Parameters
    ----------
    num_entries:
        Number of simultaneously outstanding misses supported.
    """

    def __init__(self, num_entries: int = 16):
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        # line address -> absolute completion time (cycles)
        self._outstanding: Dict[int, float] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def _expire(self, now: float) -> None:
        if not self._outstanding:
            return
        done = [line for line, t in self._outstanding.items() if t <= now]
        for line in done:
            del self._outstanding[line]

    def request(self, line_addr: int, now: float, full_latency: float) -> float:
        """Register a miss for ``line_addr`` issued at time ``now``.

        Returns the effective latency seen by this request:

        * if the line is already outstanding the request is merged and only
          the remaining time is paid;
        * if the file is full the request first waits for the earliest entry
          to complete;
        * otherwise a new entry is allocated and the full latency is paid.
        """
        self._expire(now)
        if line_addr in self._outstanding:
            self.merges += 1
            return max(0.0, self._outstanding[line_addr] - now)
        start = now
        if len(self._outstanding) >= self.num_entries:
            earliest = min(self._outstanding.values())
            self.full_stalls += 1
            start = max(now, earliest)
            self._expire(start)
        completion = start + full_latency
        self._outstanding[line_addr] = completion
        self.allocations += 1
        return completion - now

    @property
    def occupancy(self) -> int:
        """Number of currently tracked outstanding misses (untrimmed)."""
        return len(self._outstanding)

    def reset(self) -> None:
        self._outstanding.clear()
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
