"""Functional main memory and its timing parameters.

Data is stored at 8-byte-word granularity in a dictionary keyed by word
address.  This keeps the functional model sparse (only touched words are
stored) and flexible about data types: values are ordinary Python numbers
(ints or floats), which is sufficient for the NAS-style kernels used in the
evaluation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.program import WORD_SIZE


class MainMemory:
    """Backing store for the system memory (SM).

    Parameters
    ----------
    latency:
        Access latency in cycles for a demand miss that reaches main memory
        (on top of the cache-hierarchy lookup latencies).
    """

    def __init__(self, latency: int = 150):
        self.latency = latency
        self._words: Dict[int, float] = {}
        self.reads = 0
        self.writes = 0

    @staticmethod
    def _word_addr(addr: int) -> int:
        return addr - (addr % WORD_SIZE)

    # -- functional accesses ---------------------------------------------------
    def read_word(self, addr: int):
        """Read the word containing byte address ``addr`` (0 if untouched)."""
        self.reads += 1
        return self._words.get(self._word_addr(addr), 0)

    def write_word(self, addr: int, value) -> None:
        """Write ``value`` to the word containing byte address ``addr``."""
        self.writes += 1
        self._words[self._word_addr(addr)] = value

    def peek(self, addr: int):
        """Read without updating statistics (used by tests and the loader)."""
        return self._words.get(self._word_addr(addr), 0)

    def poke(self, addr: int, value) -> None:
        """Write without updating statistics (used by the program loader)."""
        self._words[self._word_addr(addr)] = value

    # -- block transfers (DMA) -------------------------------------------------
    def read_block(self, addr: int, size_bytes: int) -> List[float]:
        """Read ``size_bytes // WORD_SIZE`` consecutive words starting at ``addr``."""
        base = self._word_addr(addr)
        n = size_bytes // WORD_SIZE
        return [self._words.get(base + i * WORD_SIZE, 0) for i in range(n)]

    def write_block(self, addr: int, values) -> None:
        """Write consecutive words starting at ``addr``."""
        base = self._word_addr(addr)
        for i, v in enumerate(values):
            self._words[base + i * WORD_SIZE] = v

    @property
    def footprint_words(self) -> int:
        """Number of distinct words ever written (for tests)."""
        return len(self._words)

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
