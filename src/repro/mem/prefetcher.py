"""IP-based stream prefetcher (Table 1).

The simulated core uses an instruction-pointer indexed stream prefetcher in
the style of Chen & Baer [30] and the Intel Core stream prefetcher [31]: a
table indexed by the PC of the memory instruction records the last address
and stride; once the same stride is observed twice the entry becomes
confident and prefetches ``degree`` lines ahead of the demand stream.

The prefetcher is a key actor in the paper's evaluation: in the cache-based
baseline the many concurrent strided streams collide in this table and the
prefetched lines cause conflict misses, whereas in the hybrid memory system
the strided accesses are served by the local memory and never train the
prefetcher (Section 4.3).
"""

from __future__ import annotations

from collections import OrderedDict


class _StreamEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, last_addr: int):
        self.last_addr = last_addr
        self.stride = 0
        self.confidence = 0


class StreamPrefetcher:
    """Per-PC stride/stream detector.

    Parameters
    ----------
    table_size:
        Number of PC-indexed entries (streams tracked concurrently).  When
        more streams are live than entries exist, entries are evicted and
        retrained, which models the "collisions in the history tables"
        described in Section 4.3.
    degree:
        Number of consecutive lines prefetched once a stream is confident.
    distance:
        How many strides ahead of the demand access the prefetches start.
    line_size:
        Cache-line size in bytes.
    """

    def __init__(self, table_size: int = 16, degree: int = 2,
                 distance: int = 1, line_size: int = 64):
        self.table_size = table_size
        self.degree = degree
        self.distance = distance
        self.line_size = line_size
        # PC -> entry, ordered LRU-first (the dict doubles as the LRU list;
        # the separate O(n) recency list was a measured hot path).
        self._table: "OrderedDict[int, _StreamEntry]" = OrderedDict()
        self.trainings = 0
        self.issued = 0
        self.collisions = 0

    def train(self, pc: int, addr: int):
        """Observe a demand access; returns line addresses to prefetch.

        The detector works at cache-line granularity (like hardware stream
        prefetchers): repeated accesses inside the same line keep the stream
        alive without perturbing the detected stride, and once two identical
        line-to-line strides are seen the stream prefetches ``degree`` lines
        starting ``distance`` strides ahead of the demand access.  The
        no-prefetch paths return an empty tuple (not a fresh list): this runs
        once per demand access and the allocation was measurable.
        """
        self.trainings += 1
        line_addr = addr - (addr % self.line_size)
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.table_size:
                table.popitem(last=False)
                self.collisions += 1
            table[pc] = _StreamEntry(line_addr)
            return ()
        table.move_to_end(pc)
        stride = line_addr - entry.last_addr
        if stride == 0:
            return ()
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = line_addr
        if entry.confidence < 1:
            return ()
        prefetches = []
        base = line_addr + entry.stride * self.distance
        for i in range(1, self.degree + 1):
            target = base + entry.stride * i
            line = target - (target % self.line_size)
            if line not in prefetches:
                prefetches.append(line)
        self.issued += len(prefetches)
        return prefetches

    def train_batch(self, pcs, addrs):
        """Observe a whole slice of demand accesses; one result per access.

        Exactly equivalent to ``[self.train(pc, a) for pc, a in zip(pcs,
        addrs)]`` — same table/stride/confidence state, same counters, same
        per-access prefetch lists — with the table and geometry bound to
        locals so batch replay pays them once per slice.
        """
        line_size = self.line_size
        table = self._table
        table_size = self.table_size
        degree = self.degree
        distance = self.distance
        issued = 0
        collisions = 0
        out = []
        append = out.append
        for pc, addr in zip(pcs, addrs):
            line_addr = addr - (addr % line_size)
            entry = table.get(pc)
            if entry is None:
                if len(table) >= table_size:
                    table.popitem(last=False)
                    collisions += 1
                table[pc] = _StreamEntry(line_addr)
                append(())
                continue
            table.move_to_end(pc)
            stride = line_addr - entry.last_addr
            if stride == 0:
                append(())
                continue
            if stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, 3)
            else:
                entry.stride = stride
                entry.confidence = 0
            entry.last_addr = line_addr
            if entry.confidence < 1:
                append(())
                continue
            prefetches = []
            base = line_addr + entry.stride * distance
            for i in range(1, degree + 1):
                target = base + entry.stride * i
                line = target - (target % line_size)
                if line not in prefetches:
                    prefetches.append(line)
            issued += len(prefetches)
            append(prefetches)
        self.trainings += len(out)
        self.issued += issued
        self.collisions += collisions
        return out

    def reset(self) -> None:
        self._table.clear()
        self.trainings = 0
        self.issued = 0
        self.collisions = 0

    @property
    def live_streams(self) -> int:
        return len(self._table)
