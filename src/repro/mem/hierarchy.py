"""The cache hierarchy of the simulated core (Table 1).

:class:`MemoryHierarchy` glues together the L1 data cache, L2, L3, the
IP-based stream prefetcher, the MSHR file, the bus and main memory.  It
provides three entry points:

* :meth:`access` — demand loads/stores issued by the core (the cache-served
  path of the hybrid memory system, and every access of the cache-based
  baseline);
* :meth:`snoop_read` — coherent dma-get bus requests that look up the caches
  for the valid copy before falling back to main memory (Section 2.1);
* :meth:`snoop_invalidate` — coherent dma-put bus requests that write main
  memory and invalidate the line in the whole hierarchy (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.bus import Bus
from repro.mem.cache import Cache
from repro.mem.main_memory import MainMemory
from repro.mem.mshr import MSHRFile
from repro.mem.prefetcher import StreamPrefetcher


@dataclass(slots=True)
class AccessResult:
    """Outcome of a demand access (allocated once per access — slots keep it
    cheap)."""

    latency: float
    level: str  # "L1", "L2", "L3" or "MEM"

    @property
    def hit_l1(self) -> bool:
        return self.level == "L1"


@dataclass
class MemoryHierarchyConfig:
    """Sizes and latencies of the cache hierarchy (defaults follow Table 1)."""

    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 2
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 8
    l1i_latency: int = 2
    l2_size: int = 256 * 1024
    l2_assoc: int = 24
    l2_latency: int = 15
    l3_size: int = 4 * 1024 * 1024
    l3_assoc: int = 32
    l3_latency: int = 40
    memory_latency: int = 150
    mshr_entries: int = 16
    bus_latency_per_line: int = 4
    prefetch_enabled: bool = True
    prefetch_table_size: int = 16
    prefetch_degree: int = 4
    prefetch_distance: int = 4

    def copy_with(self, **kwargs) -> "MemoryHierarchyConfig":
        """Return a copy with some fields overridden."""
        data = self.__dict__.copy()
        data.update(kwargs)
        return MemoryHierarchyConfig(**data)


class MemoryHierarchy:
    """Cycle-approximate model of the SM side (caches + main memory).

    With ``uncore`` set (multicore), the main memory and the bus are the
    *shared* instances of that uncore, and demand misses reaching memory —
    plus, via :meth:`uncore_delay`, DMA bursts — pay its arbitration's
    queueing delay.  Without one (every single-core system), behaviour and
    timing are bit-for-bit what they always were.
    """

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None,
                 uncore=None):
        self.config = config or MemoryHierarchyConfig()
        c = self.config
        self.uncore = uncore
        # A clustered per-core port (ClusterUncore.port) carries the
        # hierarchical demand/DMA paths; the flat Uncore does not, and its
        # pre-cluster arithmetic below stays bit-identical.
        self._mem_port = uncore if hasattr(uncore, "mem_path") else None
        self.l1 = Cache("L1D", c.l1_size, c.l1_assoc, c.line_size,
                        c.l1_latency, write_back=False)
        self.l1i = Cache("L1I", c.l1i_size, c.l1i_assoc, c.line_size,
                         c.l1i_latency, write_back=False)
        self.l2 = Cache("L2", c.l2_size, c.l2_assoc, c.line_size,
                        c.l2_latency, write_back=True)
        self.l3 = Cache("L3", c.l3_size, c.l3_assoc, c.line_size,
                        c.l3_latency, write_back=True)
        if uncore is not None:
            self.memory = uncore.memory
            self.bus = uncore.bus
        else:
            self.memory = MainMemory(latency=c.memory_latency)
            self.bus = Bus(c.bus_latency_per_line)
        self.mshr = MSHRFile(c.mshr_entries)
        self.prefetcher = StreamPrefetcher(
            table_size=c.prefetch_table_size, degree=c.prefetch_degree,
            distance=c.prefetch_distance, line_size=c.line_size)
        # Aggregate counters
        self.demand_accesses = 0
        self.total_latency = 0.0
        self.icache_accesses = 0
        # Flattened per-access constants (the demand path runs per retired
        # memory instruction).
        self._prefetch_enabled = c.prefetch_enabled
        self._l1_latency = float(c.l1_latency)

    # -- demand path -----------------------------------------------------------
    def access(self, addr: int, is_write: bool, pc: int = 0,
               now: float = 0.0) -> AccessResult:
        """Demand access from the core.  Returns latency and serving level."""
        self.demand_accesses += 1

        hit_l1 = self.l1.access(addr, is_write)
        if hit_l1:
            result = AccessResult(latency=self._l1_latency, level="L1")
            if is_write:
                # Write-through L1: propagate the write to L2 off the critical
                # path (write buffer), updating L2 state if the line is there.
                self._writethrough(addr)
        else:
            result = self._miss_path(addr, is_write, now)
        # Train the prefetcher on every demand access to the L1D, like an
        # IP-based stream prefetcher observing the load/store stream.
        if self._prefetch_enabled:
            for pf_line in self.prefetcher.train(pc, addr):
                self._prefetch_fill(pf_line)
        self.total_latency += result.latency
        return result

    def _writethrough(self, addr: int) -> None:
        """Propagate a write-through from L1 into L2 (no latency charged)."""
        hit = self.l2.access(addr, True, kind="writethrough")
        if not hit:
            # No write-allocate for write-through traffic: forward towards L3
            # (counted as activity only).
            self.l3.access(addr, True, kind="writethrough")

    def _miss_path(self, addr: int, is_write: bool, now: float) -> AccessResult:
        """Handle an L1 demand miss: walk L2/L3/memory, fill upwards."""
        c = self.config
        line = self.l1.line_address(addr)
        hit_l2 = self.l2.access(addr, False)
        if hit_l2:
            beyond_l1 = float(c.l2_latency)
            level = "L2"
        else:
            hit_l3 = self.l3.access(addr, False)
            if hit_l3:
                beyond_l1 = float(c.l2_latency + c.l3_latency)
                level = "L3"
            else:
                if self._mem_port is not None:
                    # Clustered uncore: cluster-bus claims, NUMA penalty and
                    # the home LLC slice replace the fixed memory round trip
                    # (mem_path counts memory.reads itself, LLC misses only).
                    beyond_l1 = float(c.l2_latency + c.l3_latency) \
                        + self._mem_port.mem_path(now, line)
                else:
                    self.memory.reads += 1
                    beyond_l1 = float(c.l2_latency + c.l3_latency + c.memory_latency)
                    if self.uncore is not None:
                        # Shared-uncore arbitration: concurrent misses from
                        # other cores stretch this one's memory round trip.
                        beyond_l1 += self.uncore.acquire(now, 1)
                level = "MEM"
                # Fill L3 from memory.
                self._fill_level(self.l3, line, next_cache=None)
            # Fill L2 from L3.
            self._fill_level(self.l2, line, next_cache=self.l3)
        # The portion of the latency beyond the L1 goes through an MSHR so
        # that concurrent misses to the same line merge and MLP is bounded.
        effective = self.mshr.request(line, now, beyond_l1)
        # Fill L1 (write-allocate on write misses).
        self._fill_level(self.l1, line, next_cache=self.l2)
        if is_write:
            self._writethrough(addr)
        return AccessResult(latency=float(c.l1_latency) + effective, level=level)

    def _fill_level(self, cache: Cache, line: int, next_cache: Optional[Cache],
                    is_prefetch: bool = False) -> None:
        """Fill ``line`` into ``cache``; handle the victim's write-back."""
        evicted = cache.fill(line, is_prefetch=is_prefetch)
        if evicted is not None:
            victim, dirty = evicted
            if dirty and next_cache is not None:
                # Dirty victim is written back into the next level.
                next_cache.access(victim, True, kind="writethrough")
            elif dirty:
                self.memory.writes += 1

    def _prefetch_fill(self, line: int) -> None:
        """Bring a prefetched line into L1/L2/L3 (Table 1: prefetch to all levels)."""
        if self.l1.probe(line):
            return
        hit_l2 = self.l2.access(line, False, kind="prefetch")
        if not hit_l2:
            hit_l3 = self.l3.access(line, False, kind="prefetch")
            if not hit_l3:
                self.memory.reads += 1
                self._fill_level(self.l3, line, None, is_prefetch=True)
            self._fill_level(self.l2, line, self.l3, is_prefetch=True)
        self._fill_level(self.l1, line, self.l2, is_prefetch=True)

    # -- instruction fetch -----------------------------------------------------
    def fetch_access(self, pc_addr: int) -> float:
        """Instruction-cache access; counted for energy, almost always a hit."""
        self.icache_accesses += 1
        hit = self.l1i.access(pc_addr, False)
        if not hit:
            self.l1i.fill(pc_addr)
            return float(self.config.l1i_latency + self.config.l2_latency)
        return float(self.config.l1i_latency)

    def uncore_delay(self, now: float, lines: int = 1,
                     sm_addr: Optional[int] = None) -> float:
        """Queueing delay of a ``lines``-line burst at the shared uncore
        (0.0 on single-core systems, which have no uncore).

        ``sm_addr`` is the burst's SM byte address; on a clustered uncore it
        selects the home cluster (NUMA routing) through the per-core port's
        DMA path.  The flat bus ignores it.
        """
        if self.uncore is None:
            return 0.0
        if self._mem_port is not None and sm_addr is not None:
            return self._mem_port.dma_path(now, lines, sm_addr)
        return self.uncore.acquire(now, lines)

    # -- coherent DMA bus requests ----------------------------------------------
    def snoop_read(self, addr: int) -> float:
        """dma-get bus request: find the valid copy of one line in the SM.

        The caches are looked up top-down; if the line is found it is read
        from there, otherwise from main memory.  Returns the latency of
        sourcing this line.
        """
        c = self.config
        lat = self.bus.transfer(1, c.line_size, dma=True)
        if self.l1.access(addr, False, kind="dma") and self.l1.probe(addr):
            return lat + c.l1_latency
        if self.l2.access(addr, False, kind="dma"):
            return lat + c.l2_latency
        if self.l3.access(addr, False, kind="dma"):
            return lat + c.l3_latency
        return lat + c.memory_latency

    def snoop_invalidate(self, addr: int) -> float:
        """dma-put bus request: invalidate the line in the whole hierarchy."""
        c = self.config
        lat = self.bus.transfer(1, c.line_size, dma=True)
        self.l1.invalidate(addr)
        self.l2.invalidate(addr)
        self.l3.invalidate(addr)
        self.memory.writes += 1
        return lat + c.memory_latency

    # -- functional data --------------------------------------------------------
    def read_word(self, addr: int):
        """Functional read of SM data (data lives in main memory storage)."""
        return self.memory.read_word(addr)

    def write_word(self, addr: int, value) -> None:
        """Functional write of SM data."""
        self.memory.write_word(addr, value)

    # -- reporting ---------------------------------------------------------------
    @property
    def amat(self) -> float:
        """Average latency of demand accesses served by the hierarchy."""
        if self.demand_accesses == 0:
            return 0.0
        return self.total_latency / self.demand_accesses

    def stats_summary(self) -> dict:
        """Aggregate per-level statistics (used by Table 3 and the energy model)."""
        return {
            "L1": self.l1.stats.as_dict(),
            "L1I": self.l1i.stats.as_dict(),
            "L2": self.l2.stats.as_dict(),
            "L3": self.l3.stats.as_dict(),
            "memory_reads": self.memory.reads,
            "memory_writes": self.memory.writes,
            "bus_transactions": self.bus.transactions,
            "bus_dma_transactions": self.bus.dma_transactions,
            "prefetches_issued": self.prefetcher.issued,
            "prefetcher_collisions": self.prefetcher.collisions,
            "mshr_merges": self.mshr.merges,
            "demand_accesses": self.demand_accesses,
            "amat": self.amat,
        }
