"""Set-associative cache model with LRU replacement.

The cache stores tags and per-line state only; functional data always lives
in :class:`repro.mem.main_memory.MainMemory`.  This "timing cache, functional
memory" split is a standard simulator simplification: the incoherence the
paper studies is between the local memory and the *system memory* (caches +
main memory), which DMA keeps coherent, so no information is lost by holding
SM data in a single functional store.

Write policies follow Table 1: the L1 data cache is write-through (writes are
propagated to the next level and lines are never dirty), L2 and L3 are
write-back (dirty lines generate a write-back access to the next level when
evicted).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class CacheStats:
    """Activity counters of one cache level.

    ``accesses`` follows the paper's broad accounting (Table 3): every tag
    lookup counts, whether it comes from a demand access, a prefetch, a line
    fill, a write-through/write-back from an inner level, or a DMA bus
    request (lookup or invalidation).
    """

    accesses: int = 0
    demand_accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    prefetch_lookups: int = 0
    prefetch_fills: int = 0
    dma_lookups: int = 0
    writethrough_accesses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses,
            "demand_accesses": self.demand_accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "prefetch_lookups": self.prefetch_lookups,
            "prefetch_fills": self.prefetch_fills,
            "dma_lookups": self.dma_lookups,
            "writethrough_accesses": self.writethrough_accesses,
        }

    @property
    def hit_ratio(self) -> float:
        """Demand hit ratio (hits / demand accesses), in [0, 1]."""
        if self.demand_accesses == 0:
            return 0.0
        return self.hits / self.demand_accesses


class Cache:
    """A single set-associative cache level.

    Parameters
    ----------
    name:
        Level name (``"L1D"``, ``"L2"``, ...), used in reports.
    size_bytes:
        Total capacity.
    assoc:
        Associativity (number of ways).
    line_size:
        Cache-line size in bytes.
    latency:
        Hit latency in cycles.
    write_back:
        ``True`` for write-back (L2/L3), ``False`` for write-through (L1D).
    write_allocate:
        Whether a write miss allocates the line (default ``True``).
    """

    def __init__(self, name: str, size_bytes: int, assoc: int, line_size: int,
                 latency: int, write_back: bool = True,
                 write_allocate: bool = True):
        if size_bytes < assoc * line_size:
            raise ValueError(
                f"{name}: size {size_bytes} smaller than one set (assoc*line_size)")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.num_sets = size_bytes // (assoc * line_size)
        # Each set is an OrderedDict mapping line address -> dirty flag,
        # ordered from LRU (first) to MRU (last).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.stats = CacheStats()

    # -- address helpers -------------------------------------------------------
    def line_address(self, addr: int) -> int:
        """Return the line-aligned address containing byte address ``addr``."""
        return addr - (addr % self.line_size)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_size) % self.num_sets

    # -- basic operations ------------------------------------------------------
    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """Tag lookup.  Returns True on hit.  Does not count statistics."""
        s = self._sets.get(self._set_index(line_addr))
        if s is None or line_addr not in s:
            return False
        if update_lru:
            s.move_to_end(line_addr)
        return True

    def access(self, addr: int, is_write: bool, *, kind: str = "demand") -> bool:
        """Perform a demand-style access to ``addr``.

        Returns True on hit.  Marks the line dirty on a write hit if the
        cache is write-back.  ``kind`` selects the statistics bucket:
        ``"demand"``, ``"prefetch"``, ``"writethrough"`` or ``"dma"``.
        """
        # line_address()/_set_index() inlined: this is the hottest method in
        # the whole simulator (every demand access, write-through, prefetch
        # lookup and instruction fetch lands here).
        line_size = self.line_size
        line = addr - (addr % line_size)
        stats = self.stats
        stats.accesses += 1
        if kind == "demand":
            stats.demand_accesses += 1
        elif kind == "prefetch":
            stats.prefetch_lookups += 1
        elif kind == "writethrough":
            stats.writethrough_accesses += 1
        elif kind == "dma":
            stats.dma_lookups += 1
        s = self._sets.get((line // line_size) % self.num_sets)
        hit = s is not None and line in s
        if hit:
            if kind == "demand":
                stats.hits += 1
            s.move_to_end(line)
            if is_write and self.write_back:
                s[line] = True
        else:
            if kind == "demand":
                stats.misses += 1
        return hit

    def access_batch(self, addrs, is_write: bool = False, *,
                     kind: str = "demand", fill_misses: bool = False):
        """Perform one :meth:`access` per address; returns the hit flags.

        Exactly equivalent to ``[self.access(a, is_write, kind=kind) for a
        in addrs]`` — same tag/LRU/dirty state, same statistics — and, with
        ``fill_misses``, to additionally calling :meth:`fill(a)` after every
        miss (the instruction-fetch pattern).  Set/tag math and the set table
        are bound to locals so batch replay pays them once per slice instead
        of once per access.
        """
        line_size = self.line_size
        num_sets = self.num_sets
        sets = self._sets
        assoc = self.assoc
        write_back = self.write_back
        dirty_on_hit = is_write and write_back
        setdefault = sets.setdefault
        flags = []
        append = flags.append
        hits = 0
        fills = 0
        evictions = 0
        writebacks = 0
        for addr in addrs:
            line = addr - (addr % line_size)
            s = sets.get((line // line_size) % num_sets)
            hit = s is not None and line in s
            if hit:
                hits += 1
                s.move_to_end(line)
                if dirty_on_hit:
                    s[line] = True
            elif fill_misses:
                if s is None:
                    s = setdefault((line // line_size) % num_sets,
                                   OrderedDict())
                fills += 1
                if len(s) >= assoc:
                    _, victim_dirty = s.popitem(last=False)
                    evictions += 1
                    if victim_dirty and write_back:
                        writebacks += 1
                s[line] = False
            append(hit)
        stats = self.stats
        count = len(flags)
        stats.accesses += count + fills
        if kind == "demand":
            stats.demand_accesses += count
            stats.hits += hits
            stats.misses += count - hits
        elif kind == "prefetch":
            stats.prefetch_lookups += count
        elif kind == "writethrough":
            stats.writethrough_accesses += count
        elif kind == "dma":
            stats.dma_lookups += count
        stats.fills += fills
        stats.evictions += evictions
        stats.writebacks += writebacks
        return flags

    def fill(self, addr: int, dirty: bool = False,
             is_prefetch: bool = False) -> Optional[Tuple[int, bool]]:
        """Place the line containing ``addr`` in the cache.

        Returns ``(evicted_line_address, was_dirty)`` when a victim had to be
        evicted, else ``None``.  Filling an already-present line only updates
        LRU/dirty state.
        """
        line = self.line_address(addr)
        idx = self._set_index(line)
        s = self._sets.setdefault(idx, OrderedDict())
        self.stats.accesses += 1
        self.stats.fills += 1
        if is_prefetch:
            self.stats.prefetch_fills += 1
        if line in s:
            s.move_to_end(line)
            if dirty and self.write_back:
                s[line] = True
            return None
        evicted = None
        if len(s) >= self.assoc:
            victim_line, victim_dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty and self.write_back:
                self.stats.writebacks += 1
            evicted = (victim_line, victim_dirty and self.write_back)
        s[line] = dirty and self.write_back
        return evicted

    def invalidate(self, addr: int) -> Tuple[bool, bool]:
        """Invalidate the line containing ``addr``.

        Returns ``(was_present, was_dirty)``.  Used by coherent DMA put
        transfers (Section 2.1) and by tests.
        """
        line = self.line_address(addr)
        s = self._sets.get(self._set_index(line))
        self.stats.accesses += 1
        self.stats.invalidations += 1
        if s is None or line not in s:
            return (False, False)
        dirty = s.pop(line)
        return (True, dirty)

    def probe(self, addr: int) -> bool:
        """Check presence without disturbing LRU or statistics."""
        line = self.line_address(addr)
        s = self._sets.get(self._set_index(line))
        return s is not None and line in s

    def is_dirty(self, addr: int) -> bool:
        """Return True if the line containing ``addr`` is present and dirty."""
        line = self.line_address(addr)
        s = self._sets.get(self._set_index(line))
        return bool(s) and s.get(line, False)

    def flush(self) -> int:
        """Drop all lines; returns the number of dirty lines discarded."""
        dirty = sum(
            1 for s in self._sets.values() for d in s.values() if d)
        self._sets.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident (for tests)."""
        return sum(len(s) for s in self._sets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cache({self.name}, {self.size_bytes // 1024}KB, "
                f"{self.assoc}-way, {'WB' if self.write_back else 'WT'})")
