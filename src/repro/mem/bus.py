"""On-chip bus connecting the cache hierarchy, the DMA controller and memory.

The bus model is purely an activity counter with a per-transfer latency:
coherent DMA transfers issue one bus request per cache line moved (Section
2.1), and the energy model charges each request.
"""

from __future__ import annotations


class Bus:
    """Counts bus transactions and models a fixed per-line transfer cost.

    Parameters
    ----------
    latency_per_line:
        Cycles needed to move one cache line across the bus.
    """

    def __init__(self, latency_per_line: int = 4):
        self.latency_per_line = latency_per_line
        self.transactions = 0
        self.dma_transactions = 0
        self.bytes_transferred = 0

    def transfer(self, num_lines: int, line_size: int, *, dma: bool = False) -> int:
        """Account for a transfer of ``num_lines`` lines; returns its latency."""
        if num_lines < 0:
            raise ValueError("cannot transfer a negative number of lines")
        self.transactions += num_lines
        if dma:
            self.dma_transactions += num_lines
        self.bytes_transferred += num_lines * line_size
        return num_lines * self.latency_per_line

    def reset(self) -> None:
        self.transactions = 0
        self.dma_transactions = 0
        self.bytes_transferred = 0
