"""Deterministic fault injection for the sweep/replay/store pipeline.

Every recovery path in the engine — cell retry, pool rebuild, store
degradation, vector-to-fused fallback — exists because something can fail
in production; none of it is trustworthy unless a test can provoke that
failure *on demand* and *reproducibly*.  This module is the one switchboard:
named **injection sites** threaded through the pipeline call
:func:`check` / :func:`fire`, and the ``REPRO_FAULTS`` environment variable
activates them.  With the variable unset the entire layer is a single dict
lookup per site (the sites sit at per-cell / per-pass granularity, never in
per-instruction loops), which keeps the ``python -m repro.obs overhead``
perf guard honest — the same zero-overhead-when-off discipline as
:class:`repro.obs.NullRecorder`.

Sites currently wired (grep for ``faults.check`` / ``faults.fire``):

=====================  ===========================================================
``worker.exec``        start of :func:`~repro.harness.sweep.execute_spec`
                       (key = spec hash, attempt = retry number)
``capture.exec``       pool entry of the capture-once pre-pass (key = trace key)
``store.put``          :meth:`ResultStore.put <repro.harness.sweep.ResultStore.put>`
``trace.put``          :meth:`~repro.trace.store.TraceStore.put`
``trace.decode``       :meth:`~repro.trace.store.TraceStore.get` (parse path)
``artifact.write``     :meth:`~repro.trace.artifacts.ArtifactStore.put`
``ckernel.compile``    :func:`repro.trace._ckernel.load`
``vector.prelower``    the vector engine's prelowering pass
=====================  ===========================================================

Spec grammar — ``;``-separated clauses::

    REPRO_FAULTS = clause (';' clause)*
    clause       = 'seed=' INT
                 | site ['@' keyfilter] ['=' kind] [':' rate] ['x' limit]
    site         = dotted name, '*' suffix allowed for prefix match
    kind         = 'err' | 'os' | 'crash' | 'torn' | 'hang' [seconds]

Examples::

    worker.exec=crash:0.5        crash half of all cell executions
    worker.exec=errx1            every cell fails once, succeeds on retry
    worker.exec=crash@3f9a       permanently crash cells whose key contains 3f9a
    store.put=os                 every result write raises ENOSPC
    ckernel.compile=err          C-kernel unavailable -> engine degradation
    worker.exec=hang5x1;seed=7   first attempt of each cell stalls 5 seconds

Determinism: whether a clause fires is a pure function of
``(seed, site, key, attempt)`` — a SHA-256 in [0, 1) compared against the
clause's rate — so an injected crash reproduces bit-identically in any
process, on any host, regardless of scheduling or ``PYTHONHASHSEED``.  The
``attempt`` axis re-rolls the decision on every retry, and the ``x`` limit
bounds injection to the first N attempts (``x1`` = fail once then succeed:
the canonical transient fault), while a clause without a limit at rate 1.0
is a permanently poisoned site.

Kinds map to failure modes: ``err`` raises :class:`FaultError` (a generic
in-process failure), ``os`` raises ``OSError(ENOSPC)`` (the store
degradation trigger), ``crash`` raises :class:`FaultCrash` which pool
workers translate into ``os._exit`` (a hard worker death ->
``BrokenProcessPool``), ``torn`` truncates the bytes a store was about to
write (exercising corrupted-entry recovery), and ``hang<seconds>`` sleeps
(exercising the per-cell wall-clock timeout).
"""

from __future__ import annotations

import errno
import hashlib
import os
import re
import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro import obs

__all__ = [
    "FAULTS_ENV",
    "FaultClause",
    "FaultCrash",
    "FaultError",
    "FaultPlan",
    "FaultSpecError",
    "apply_write_fault",
    "check",
    "fire",
]

#: Environment variable carrying the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("err", "os", "crash", "torn", "hang")


class FaultError(RuntimeError):
    """Generic injected failure (kind ``err``): an in-process exception."""


class FaultCrash(RuntimeError):
    """Injected hard crash (kind ``crash``).

    Raised in-process; pool worker entry points translate it into
    ``os._exit`` so the parent sees a dead worker (``BrokenProcessPool``),
    while inline execution surfaces it as an ordinary retryable exception.
    """


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` clause could not be parsed."""


_CLAUSE = re.compile(
    r"^(?P<site>[A-Za-z_][A-Za-z0-9_.]*\*?|\*)"
    r"(?:@(?P<key>[^=:;]*))?"
    # The kind alternation is spelled out (rather than [A-Za-z]+) so a
    # trailing "x<limit>" is never swallowed as kind letters ("errx1").
    r"(?:=(?P<kind>(?:err|os|crash|torn|hang)(?:[0-9.]+)?))?"
    r"(?::(?P<rate>[0-9.]+))?"
    r"(?:x(?P<limit>[0-9]+))?$")


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of the spec: where, what, how often, how long."""

    site: str                       #: site name, optionally ``*``-suffixed
    key_filter: str = ""            #: substring the site key must contain
    kind: str = "err"
    arg: Optional[float] = None     #: kind parameter (``hang`` seconds)
    rate: float = 1.0
    limit: Optional[int] = None     #: fire only while ``attempt < limit``

    def matches_site(self, site: str) -> bool:
        if self.site == "*":
            return True
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec: ordered clauses plus the seed."""

    def __init__(self, clauses: Tuple[FaultClause, ...], seed: int = 0):
        self.clauses = clauses
        self.seed = seed

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        clauses = []
        seed = 0
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("seed="):
                try:
                    seed = int(raw[5:])
                except ValueError:
                    raise FaultSpecError(f"bad fault seed {raw!r}")
                continue
            match = _CLAUSE.match(raw)
            if match is None:
                raise FaultSpecError(
                    f"bad {FAULTS_ENV} clause {raw!r} (expected "
                    "site[@key][=kind][:rate][xlimit])")
            kind_text = match.group("kind") or "err"
            kind_match = re.match(r"([A-Za-z]+)([0-9.]+)?$", kind_text)
            kind = kind_match.group(1) if kind_match else kind_text
            if kind not in _KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r} in {raw!r} "
                    f"(expected one of {_KINDS})")
            arg = None
            if kind_match and kind_match.group(2):
                try:
                    arg = float(kind_match.group(2))
                except ValueError:
                    raise FaultSpecError(f"bad fault kind arg in {raw!r}")
            try:
                rate = float(match.group("rate")) if match.group("rate") else 1.0
            except ValueError:
                raise FaultSpecError(f"bad fault rate in {raw!r}")
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"fault rate {rate} not in [0, 1] "
                                     f"in {raw!r}")
            clauses.append(FaultClause(
                site=match.group("site"),
                key_filter=match.group("key") or "",
                kind=kind, arg=arg, rate=rate,
                limit=int(match.group("limit")) if match.group("limit")
                else None))
        return cls(tuple(clauses), seed)

    def fire(self, site: str, key: str, attempt: int) -> Optional[FaultClause]:
        """First clause that decides to fire at this site, or None."""
        for clause in self.clauses:
            if not clause.matches_site(site):
                continue
            if clause.key_filter and clause.key_filter not in key:
                continue
            if clause.limit is not None and attempt >= clause.limit:
                continue
            if clause.rate >= 1.0 or _decision(
                    self.seed, site, key, attempt) < clause.rate:
                return clause
        return None


def _decision(seed: int, site: str, key: str, attempt: int) -> float:
    """Pure deterministic draw in [0, 1) — identical in every process."""
    blob = f"{seed}|{site}|{key}|{attempt}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64


# -- the process-wide active plan ---------------------------------------------------
# Parsed lazily from the environment and memoised on the spec string, so
# tests can flip REPRO_FAULTS inside one process and pool workers (which
# inherit the environment) reconstruct the identical plan.
_CACHED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan parsed from ``REPRO_FAULTS``, or None when unset/empty."""
    global _CACHED
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    if text != _CACHED[0]:
        _CACHED = (text, FaultPlan.parse(text))
    return _CACHED[1]


def fire(site: str, key: object = "", attempt: int = 0
         ) -> Optional[FaultClause]:
    """The clause injected at this (site, key, attempt), or None.

    The common path — no ``REPRO_FAULTS`` — is one environment lookup.
    Sites that need to *handle* a fault themselves (torn writes) call this
    and interpret the clause; everything else goes through :func:`check`.
    A fired clause is counted (``faults.injected`` and ``faults.<site>``)
    and logged through the shared logger.
    """
    plan = active_plan()
    if plan is None:
        return None
    clause = plan.fire(site, str(key), attempt)
    if clause is not None:
        obs.incr("faults.injected")
        obs.incr(f"faults.{site}")
        obs.get_logger().warning(
            "fault injected at %s (key=%s attempt=%d kind=%s)",
            site, key, attempt, clause.kind)
    return clause


def check(site: str, key: object = "", attempt: int = 0) -> None:
    """Raise (or stall) if the active plan injects a fault here.

    ``err``/``torn`` raise :class:`FaultError`, ``os`` raises
    ``OSError(ENOSPC)``, ``crash`` raises :class:`FaultCrash`, ``hang``
    sleeps for its argument (default 1s) and returns.
    """
    clause = fire(site, key, attempt)
    if clause is not None:
        _raise(clause, site, key, attempt)


def _raise(clause: FaultClause, site: str, key: object, attempt: int) -> None:
    where = f"at {site} (key={key}, attempt={attempt})"
    if clause.kind == "hang":
        time.sleep(clause.arg if clause.arg is not None else 1.0)
        return
    if clause.kind == "os":
        raise OSError(errno.ENOSPC, f"injected ENOSPC {where}")
    if clause.kind == "crash":
        raise FaultCrash(f"injected worker crash {where}")
    raise FaultError(f"injected fault {where}")


def apply_write_fault(clause: FaultClause, site: str, key: object,
                      data: Union[bytes, str]) -> Union[bytes, str]:
    """Apply a fired clause to bytes a store is about to write.

    ``torn`` returns the first half of ``data`` — the caller writes the
    truncated blob to the *final* path, simulating a torn write whose
    corruption is only discovered by the next reader; every other kind
    behaves as in :func:`check` (``hang`` stalls then writes normally).
    """
    if clause.kind == "torn":
        return data[:len(data) // 2]
    _raise(clause, site, key, 0)
    return data
