"""Simulated-time timeline recorder with Chrome trace-event export.

A :class:`TimelineRecorder` accumulates what the multicore machine was doing
*in simulated cycles* — per-core lane run spans (the gaps between them are
stalls), shared-bus occupancy and queueing delay, DMA bursts and
memory-routed demand misses — and exports them as Chrome trace-event JSON
(the ``{"traceEvents": [...]}`` container), which loads directly in
Perfetto / ``chrome://tracing``.

Hook points:

* :func:`repro.cpu.multicore.run_resumable_lanes` wraps each lane in a
  timing proxy when given a recorder, emitting one run span per scheduler
  grant.  Fused lanes bounce every one or two instructions, so adjacent
  grants of the same core are **coalesced**: a new span whose start is
  within ``merge_gap`` cycles of the previous span's end extends it instead
  of emitting a new event.  Real stalls (uncore queueing, DMA syncs) exceed
  the gap and break the span — which is exactly the run/stall structure the
  timeline is meant to show.
* :class:`repro.mem.uncore.Uncore` calls :meth:`bus_claim` per ``acquire``
  when its ``timeline`` attribute is set.  Single-line claims (demand misses
  routed to memory) are aggregated into per-bucket counters; multi-line
  claims (DMA bursts) additionally emit one duration span each on the
  uncore track, sized by the bandwidth they occupy.

Timestamps are simulated cycles written into the microsecond ``ts``/``dur``
fields (1 cycle == 1 us in the viewer; only relative scale matters).
Wall-clock pipeline timelines (the sweep engine's ``--timeline``) reuse the
same container through :meth:`wall_span`, with real seconds mapped to us.

The event list is bounded: past ``max_events``, span/instant emission stops
(counters keep aggregating — they are O(buckets), not O(events)) and the
drop is reported in the export's metadata rather than silently truncated.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["TimelineRecorder"]

#: Track id used for shared-uncore events (cores occupy 0..N-1).
UNCORE_TID = 1000


class TimelineRecorder:
    """Accumulates timeline events; exports Chrome trace-event JSON."""

    def __init__(self, merge_gap: float = 16.0, bucket_cycles: int = 256,
                 max_events: int = 400_000):
        self.merge_gap = float(merge_gap)
        self.bucket_cycles = int(bucket_cycles)
        self.max_events = int(max_events)
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        #: Per-core pending (start, end, grants) run span, coalesced.
        self._pending: Dict[int, list] = {}
        #: (bus id, bucket index) -> [lines claimed, queue-delay cycles,
        #: requests].  Bus 0 is the flat shared bus (or cluster 0's);
        #: a clustered uncore reports one bus id per cluster, so each
        #: cluster gets its own occupancy counter lane on flush.
        self._bus_buckets: Dict[tuple, list] = {}
        self._cores: set = set()
        self._labels: Dict[int, str] = {}

    # -- raw emission -------------------------------------------------------------
    def _emit(self, ev: Dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ev)

    def span(self, name: str, ts: float, dur: float, tid: int = 0,
             pid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        ev = {"name": name, "ph": "X", "ts": ts, "dur": dur,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self._emit(ev)

    def instant(self, name: str, ts: float, tid: int = 0, pid: int = 0,
                args: Optional[Dict[str, Any]] = None) -> None:
        ev = {"name": name, "ph": "i", "ts": ts, "s": "t",
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self._emit(ev)

    def counter(self, name: str, ts: float, values: Dict[str, float],
                pid: int = 0) -> None:
        # Counters bypass the event cap: they are bounded by the bucket
        # count (simulated span / bucket_cycles), not by emission volume,
        # and the occupancy curve is the part worth keeping when a trace
        # is big enough to overflow the span budget.
        self.events.append({"name": name, "ph": "C", "ts": ts, "pid": pid,
                            "tid": 0, "args": values})

    def label(self, tid: int, name: str) -> None:
        """Name a track (emitted as thread metadata on export)."""
        self._labels[tid] = name

    # -- lane runner hook ---------------------------------------------------------
    def lane_span(self, core: int, start: float, end: float) -> None:
        """One scheduler grant of ``core`` running ``[start, end)`` cycles.

        Adjacent grants within ``merge_gap`` cycles coalesce (lockstepped
        fused lanes trade the clock every instruction or two; emitting each
        grant would swamp the trace without adding structure).
        """
        if end <= start:
            return
        self._cores.add(core)
        pending = self._pending.get(core)
        if pending is not None:
            if start - pending[1] <= self.merge_gap:
                pending[1] = end if end > pending[1] else pending[1]
                pending[2] += 1
                return
            self._flush_lane(core, pending)
        self._pending[core] = [start, end, 1]

    def _flush_lane(self, core: int, pending: list) -> None:
        self.span("run", pending[0], pending[1] - pending[0], tid=core,
                  args={"grants": pending[2]})

    # -- uncore hook --------------------------------------------------------------
    def bus_claim(self, now: float, delay: float, lines: int,
                  window_cycles: int, window_lines: int,
                  bus: int = 0) -> None:
        """One ``Uncore.acquire``: ``lines`` slots claimed at ``now`` after
        ``delay`` queueing cycles on bus ``bus`` (0 for the flat shared bus;
        a clustered uncore passes its cluster index).

        Every claim lands in that bus's per-bucket occupancy/queue-delay
        counters — one counter lane per cluster bus on flush; bucket
        granularity is the recorder's ``bucket_cycles`` parameter.
        Multi-line claims (DMA bursts) additionally emit a duration span on
        the bus's uncore track covering the bandwidth they occupy.
        """
        key = (bus, int(now) // self.bucket_cycles)
        acc = self._bus_buckets.get(key)
        if acc is None:
            self._bus_buckets[key] = [lines, delay, 1]
        else:
            acc[0] += lines
            acc[1] += delay
            acc[2] += 1
        if lines > 1:
            start = now + delay
            dur = lines * window_cycles / window_lines
            self.span("dma burst", start, dur, tid=UNCORE_TID + bus,
                      args={"lines": lines, "queue_delay": delay})
        elif delay > 0.0:
            self.instant("miss queued", now, tid=UNCORE_TID + bus,
                         args={"delay": delay})

    # -- wall-clock pipeline spans (sweep --timeline) -----------------------------
    def wall_span(self, name: str, start_seconds: float, end_seconds: float,
                  tid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        """A wall-clock span, seconds mapped onto the us timeline axis."""
        self.span(name, start_seconds * 1e6,
                  (end_seconds - start_seconds) * 1e6, tid=tid, args=args)

    # -- export -------------------------------------------------------------------
    def flush(self) -> None:
        """Emit pending coalesced lane spans and bucketed bus counters."""
        for core in sorted(self._pending):
            self._flush_lane(core, self._pending[core])
        self._pending.clear()
        multi_bus = any(bus != 0 for bus, _ in self._bus_buckets)
        for bus, bucket in sorted(self._bus_buckets):
            lines, delay, requests = self._bus_buckets[(bus, bucket)]
            ts = bucket * self.bucket_cycles
            # Bus 0 keeps the legacy lane names so single-bus consumers
            # (and stored timelines) read unchanged; cluster buses — bus 0
            # included, once more than one bus reported — get one
            # qualified lane each.
            suffix = f" (cluster {bus})" if multi_bus else ""
            self.counter("bus lines" + suffix, ts, {"lines": lines})
            self.counter("bus queue delay" + suffix, ts,
                         {"cycles": round(delay, 3), "requests": requests})
        self._bus_buckets.clear()

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The ``{"traceEvents": [...]}`` container (flushes first)."""
        self.flush()
        meta: List[Dict[str, Any]] = []
        labels = dict(self._labels)
        for core in sorted(self._cores):
            labels.setdefault(core, f"core {core}")
        uncore_tids = {ev["tid"] for ev in self.events
                       if ev.get("tid", 0) >= UNCORE_TID}
        for tid in uncore_tids:
            name = ("uncore" if len(uncore_tids) == 1
                    else f"uncore cluster {tid - UNCORE_TID}")
            labels.setdefault(tid, name)
        for tid, name in sorted(labels.items()):
            meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                         "tid": tid, "args": {"name": name}})
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped,
                          "time_unit": "simulated cycles as us"},
        }

    def write(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return len(payload["traceEvents"])
