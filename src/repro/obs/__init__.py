"""Unified instrumentation layer: metrics, phase profiling and logging.

Every long-lived subsystem (sweep engine, trace stores, replay engines,
multicore lane runner, shared uncore) reports through one *recorder*
interface defined here:

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is False, so instrumented code can guard any non-trivial
  bookkeeping behind one attribute check.  Hooks are only placed at coarse
  granularity (per replay pass, per sweep cell, per C-kernel bounce — never
  inside per-instruction loops), which is what keeps the recorder-off path
  timing-identical: the CI perf guard (``python -m repro.obs overhead``)
  asserts the instrumented sweep stays within ~2% of the bare one.
* :class:`MetricsRecorder` — the recording implementation: monotonic
  counters (:meth:`~MetricsRecorder.incr`), last-value gauges, structured
  span events, and a wall-clock **phase profiler** — ``with rec.phase("x")``
  context spans that nest, attributing each phase both its inclusive
  (``total``) and exclusive (``self``) seconds.

The process-wide current recorder is read with :func:`get_recorder` and
installed with :func:`set_recorder` / the :func:`recording` context manager.
Module-level :func:`phase` / :func:`incr` / :func:`event` conveniences
delegate to the current recorder, so call sites never hold a stale one.

Structured logging rides alongside: :func:`get_logger` returns the shared
``"repro"`` logger, configured from ``REPRO_LOG=info|debug`` (silent when
the variable is unset — the default pipeline prints nothing new).

The simulated-time timeline recorder (Chrome trace-event export) lives in
:mod:`repro.obs.timeline`; the CLI (``report`` / ``overhead``) in
:mod:`repro.obs.__main__`.
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "MetricsRecorder",
    "NullRecorder",
    "event",
    "get_logger",
    "get_recorder",
    "incr",
    "phase",
    "recording",
    "set_recorder",
]


class _NullPhase:
    """Reusable no-op context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class NullRecorder:
    """The no-op default recorder.

    ``enabled`` is False so call sites can skip building event payloads
    entirely; the methods exist so unguarded coarse-grained hooks (one call
    per replay pass or sweep cell) stay branch-free.
    """

    enabled = False

    def incr(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def phase(self, name: str):
        return _NULL_PHASE


class _PhaseSpan:
    """One live ``with rec.phase(name)`` span (see :meth:`MetricsRecorder.phase`)."""

    __slots__ = ("_rec", "_name", "_start")

    def __init__(self, rec: "MetricsRecorder", name: str):
        self._rec = rec
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        self._rec._stack.append([self._name, 0.0])
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        rec = self._rec
        frame = rec._stack.pop()
        child_seconds = frame[1]
        entry = rec.phases.get(self._name)
        if entry is None:
            entry = rec.phases[self._name] = {"calls": 0, "total": 0.0,
                                              "self": 0.0}
        entry["calls"] += 1
        entry["total"] += elapsed
        entry["self"] += elapsed - child_seconds
        if rec._stack:
            rec._stack[-1][1] += elapsed
        return False


class MetricsRecorder:
    """Recording implementation: counters, gauges, events, phase profiling.

    Phase spans nest: a phase's ``total`` is its inclusive wall-clock, its
    ``self`` excludes the time spent inside phases opened while it was the
    innermost open span.  Directly recursive phases accumulate their
    inclusive time once per call, so a recursive ``total`` can exceed
    wall-clock (like CPU-seconds); ``self`` never double-counts.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self.phases: Dict[str, Dict[str, float]] = {}
        self._stack: List[list] = []

    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def event(self, name: str, **fields: Any) -> None:
        fields["name"] = name
        self.events.append(fields)

    def phase(self, name: str) -> _PhaseSpan:
        return _PhaseSpan(self, name)

    # -- reporting ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of everything recorded (JSON-serialisable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "phases": {name: dict(entry)
                       for name, entry in self.phases.items()},
            "events": list(self.events),
        }

    def phase_report(self) -> str:
        """Formatted per-phase breakdown, widest ``self`` time first."""
        if not self.phases:
            return "(no phases recorded)"
        rows = sorted(self.phases.items(),
                      key=lambda kv: kv[1]["self"], reverse=True)
        total_self = sum(entry["self"] for _, entry in rows) or 1.0
        width = max(len("phase"), max(len(name) for name, _ in rows))
        lines = [f"{'phase':<{width}s} {'calls':>6s} {'total s':>9s} "
                 f"{'self s':>9s} {'self %':>7s}"]
        lines.append("-" * (width + 35))
        for name, entry in rows:
            lines.append(
                f"{name:<{width}s} {entry['calls']:>6d} "
                f"{entry['total']:>9.3f} {entry['self']:>9.3f} "
                f"{100.0 * entry['self'] / total_self:>6.1f}%")
        return "\n".join(lines)


#: The process-wide current recorder.  Replay/sweep hooks read it through
#: :func:`get_recorder` at coarse granularity, so swapping it takes effect
#: immediately and the default costs one attribute load per hook.
_RECORDER: Any = NullRecorder()


def get_recorder():
    """The currently installed recorder (the shared no-op by default)."""
    return _RECORDER


def set_recorder(recorder) -> None:
    """Install ``recorder`` process-wide (``None`` restores the no-op)."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else NullRecorder()


@contextmanager
def recording(recorder: Optional[MetricsRecorder] = None):
    """Install ``recorder`` (a fresh :class:`MetricsRecorder` by default)
    for the duration of the block; yields it and restores the previous
    recorder afterwards."""
    rec = recorder if recorder is not None else MetricsRecorder()
    previous = _RECORDER
    set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def phase(name: str):
    """``with obs.phase("decode"):`` — a span on the current recorder."""
    return _RECORDER.phase(name)


def incr(name: str, value: int = 1) -> None:
    _RECORDER.incr(name, value)


def event(name: str, **fields: Any) -> None:
    _RECORDER.event(name, **fields)


def degraded(component: str, reason: str, **fields: Any) -> None:
    """Record that ``component`` fell back to a degraded mode.

    One call per degradation occurrence: bumps ``degraded.<component>``,
    emits a ``degraded`` event carrying the reason, and warns through the
    shared logger so the fallback is visible even without a recorder.
    Components currently degrading this way: ``vector`` (C-kernel/prelower
    failure -> fused engine), ``store.result`` / ``store.artifact``
    (consecutive write errors -> memory-only).
    """
    _RECORDER.incr(f"degraded.{component}")
    _RECORDER.event("degraded", component=component, reason=reason, **fields)
    get_logger().warning("%s degraded: %s", component, reason)


# ------------------------------------------------------------------------ logging
_LOG_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
               "warning": logging.WARNING, "error": logging.ERROR}
_LOGGER: Optional[logging.Logger] = None


def get_logger() -> logging.Logger:
    """The shared ``"repro"`` logger, configured once from ``REPRO_LOG``.

    Unset (or unrecognised) ``REPRO_LOG`` leaves the logger silent — a
    :class:`logging.NullHandler` and an effectively-off level, so callers
    can log unconditionally without changing default output.
    ``REPRO_LOG=info`` / ``debug`` attach a stderr handler with wall-clock
    timestamps.
    """
    global _LOGGER
    if _LOGGER is not None:
        return _LOGGER
    logger = logging.getLogger("repro")
    level = _LOG_LEVELS.get(os.environ.get("REPRO_LOG", "").strip().lower())
    if level is None:
        logger.addHandler(logging.NullHandler())
        logger.setLevel(logging.CRITICAL + 1)
    elif not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-5s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.setLevel(level)
    _LOGGER = logger
    return logger
