"""Observability command line: ``python -m repro.obs``.

Subcommands::

    report     replay one captured cell under a recording MetricsRecorder
               and print the per-phase wall-clock breakdown (decode,
               pre-lower, oracle/flags passes, timing) plus the counters
               (cache hits/misses, C-kernel epochs, bounce reasons)
    overhead   perf guard: time a small replay ablation sweep with the
               default null recorder vs a recording one; exit non-zero when
               enabling recording costs more than the threshold

Examples::

    python -m repro.obs report --workload CG --scale medium --engine vector
    python -m repro.obs report --workload CG --engine vector \\
        --bench-json BENCH_trace.json
    python -m repro.obs overhead --scale small --threshold 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro import obs


def _cmd_report(args) -> int:
    from repro.harness.config import PTLSIM_CONFIG
    from repro.harness.sweep import _parse_overrides
    from repro.trace import TraceKey, TraceStore, ensure_trace, replay_trace

    overrides = _parse_overrides(args.overrides)
    machine = PTLSIM_CONFIG.with_overrides(overrides)
    store = TraceStore(args.cache_dir)
    key = TraceKey.create(args.workload, args.mode, args.scale, kind="kernel",
                          lm_size=machine.lm_size,
                          directory_entries=machine.directory_entries,
                          num_cores=machine.num_cores)
    trace, captured = ensure_trace(key, store=store)
    if captured is not None:
        print(f"captured {key.label} first (no stored trace)")
    if args.warm:
        # Pay the per-trace costs (decode, pre-lower, oracle/flags passes,
        # C-kernel compile) outside the recorded run, so the report shows
        # the steady-state cost of re-replaying at this exact config.  The
        # default cold run records those passes too — they are what a
        # sweep pays at every new machine point.
        replay_trace(trace, machine, engine=args.engine)
    with obs.recording() as rec:
        start = time.perf_counter()
        result = replay_trace(trace, machine, engine=args.engine)
        wall = time.perf_counter() - start
    print(f"replay {key.label} engine={args.engine}: "
          f"cycles={result.cycles:.0f} instr={result.instructions} "
          f"energy={result.total_energy:.0f} nJ in {wall:.2f}s"
          f"{' (warm)' if args.warm else ''}")
    print()
    print(rec.phase_report())
    if rec.counters:
        print()
        width = max(len(name) for name in rec.counters)
        for name in sorted(rec.counters):
            print(f"{name:<{width}s} {rec.counters[name]:>12d}")
    snapshot = rec.snapshot()
    snapshot["cell"] = {"workload": key.workload, "mode": key.mode,
                        "scale": key.scale, "engine": args.engine,
                        "wall_seconds": round(wall, 3), "warm": args.warm}
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"\nsnapshot written to {args.json_path}")
    if args.bench_json:
        # Merge into the bench report (same protocol as the partial bench
        # modes: read-modify-write, other sections untouched).
        try:
            report = json.loads(open(args.bench_json, encoding="utf-8").read())
        except (OSError, ValueError):
            report = {}
        if not isinstance(report, dict):
            report = {}
        section = report.setdefault("obs_report", {})
        section[f"{key.workload}:{key.mode}:{key.scale}:{args.engine}"] = snapshot
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"merged into {args.bench_json}")
    return 0


def _cmd_overhead(args) -> int:
    from repro.harness.sweep import RunSpec, run_sweep
    from repro.trace.store import EphemeralTraceStore

    modes = [m.strip().lower() for m in args.modes.split(",")]
    # Timing-only parameter points: re-time one captured stream per mode
    # under each — the shape of a real sensitivity sweep.
    machine_points = [{}, {"memory.l2_size": 131072}, {"core.issue_width": 2}]
    specs = [RunSpec.create(args.workload, mode, args.scale,
                            machine=point, kind="replay")
             for point in machine_points for mode in modes]
    trace_store = EphemeralTraceStore()

    def sweep() -> None:
        run_sweep(specs, store=None, trace_store=trace_store)

    sweep()     # warm: capture the families, fill decode/program caches
    base = instrumented = float("inf")
    for _ in range(args.repeats):
        # Interleave the two variants so clock drift hits both equally.
        t0 = time.perf_counter()
        sweep()
        base = min(base, time.perf_counter() - t0)
        with obs.recording():
            t0 = time.perf_counter()
            sweep()
            instrumented = min(instrumented, time.perf_counter() - t0)
    delta = instrumented - base
    pct = 100.0 * delta / base if base > 0 else 0.0
    # A small absolute grace keeps the guard meaningful when the sweep is
    # fast enough that scheduler noise rivals the relative threshold.
    ok = delta <= base * args.threshold / 100.0 + args.grace_seconds
    print(f"overhead guard: {len(specs)} replay cell(s) "
          f"({args.workload} {args.scale}, modes {','.join(modes)}), "
          f"best of {args.repeats}")
    print(f"  null recorder      {base:8.3f}s")
    print(f"  metrics recorder   {instrumented:8.3f}s")
    print(f"  overhead           {delta:+8.3f}s ({pct:+.2f}%) — "
          f"threshold {args.threshold:.1f}% (+{args.grace_seconds:.2f}s grace): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and guard the instrumentation layer.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="phase/counter breakdown of one recorded replay")
    p_report.add_argument("--workload", default="CG", help="NAS kernel name")
    p_report.add_argument("--mode", default="hybrid",
                          help="system mode (hybrid/.../cache)")
    p_report.add_argument("--scale", default="small", help="tiny/small/medium")
    p_report.add_argument("--engine", default="vector",
                          choices=["fused", "vector", "lanes"],
                          help="replay engine to profile (default vector)")
    p_report.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="KEY=VALUE",
                          help="machine-config override (dotted paths allowed)")
    p_report.add_argument("--cache-dir", default=None,
                          help="cache root (default $REPRO_CACHE_DIR or "
                               ".repro-cache)")
    p_report.add_argument("--warm", action="store_true",
                          help="run one unrecorded replay first, so the "
                               "report shows only the steady-state cost of "
                               "re-replaying this exact config; the default "
                               "cold run attributes the per-config passes "
                               "(decode, pre-lower, oracle/flags) too")
    p_report.add_argument("--json", dest="json_path", default=None,
                          help="also dump the recorder snapshot to this file")
    p_report.add_argument("--bench-json", default=None, metavar="BENCH.json",
                          help="merge the snapshot into this bench report "
                               "(e.g. BENCH_trace.json) under 'obs_report'")
    p_report.set_defaults(func=_cmd_report)

    p_over = sub.add_parser(
        "overhead", help="assert the recording overhead stays under a bound")
    p_over.add_argument("--workload", default="CG")
    p_over.add_argument("--modes", default="hybrid,cache")
    p_over.add_argument("--scale", default="small")
    p_over.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per variant; best is kept")
    p_over.add_argument("--threshold", type=float, default=2.0,
                        help="max recording overhead in percent (default 2)")
    p_over.add_argument("--grace-seconds", type=float, default=0.05,
                        help="absolute noise grace added to the budget")
    p_over.set_defaults(func=_cmd_overhead)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":
    sys.exit(main())
