"""Activity-based energy model (Wattch/CACTI style).

The paper integrates Wattch into PTLsim to report energy.  This package
provides the equivalent for the cycle-approximate simulator: per-event energy
costs for every structure (pipeline stages, register files, ALUs, branch
predictor, caches, local memory, coherence directory, prefetchers, DMA
controller and buses) that are multiplied by the activity counters collected
during simulation.  Absolute joule figures are not meaningful — what matters,
as in the paper, is the relative breakdown and the deltas between system
configurations.
"""

from repro.energy.parameters import EnergyParameters
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = ["EnergyParameters", "EnergyBreakdown", "EnergyModel"]
