"""Energy accounting from simulation activity counters.

:class:`EnergyModel` takes a :class:`~repro.cpu.core.SimulationResult` and
produces an :class:`EnergyBreakdown` with per-structure energies and the
four-way grouping of Figure 10 (CPU, Caches, LM, Others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu.core import SimulationResult
from repro.energy.parameters import EnergyParameters


@dataclass
class EnergyBreakdown:
    """Per-component energy in nanojoules."""

    cpu: float = 0.0
    caches: float = 0.0
    lm: float = 0.0
    directory: float = 0.0
    prefetcher: float = 0.0
    dma: float = 0.0
    bus: float = 0.0
    dram: float = 0.0

    @property
    def others(self) -> float:
        """The "Others" group of Figure 10: prefetchers, DMAC, buses and the
        coherence directory."""
        return self.directory + self.prefetcher + self.dma + self.bus

    @property
    def total(self) -> float:
        """Total on-chip energy (DRAM excluded, as in Wattch)."""
        return self.cpu + self.caches + self.lm + self.others

    @property
    def total_with_dram(self) -> float:
        return self.total + self.dram

    def groups(self) -> Dict[str, float]:
        """The Figure 10 component grouping."""
        return {
            "CPU": self.cpu,
            "Caches": self.caches,
            "LM": self.lm,
            "Others": self.others,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu": self.cpu,
            "caches": self.caches,
            "lm": self.lm,
            "directory": self.directory,
            "prefetcher": self.prefetcher,
            "dma": self.dma,
            "bus": self.bus,
            "dram": self.dram,
            "others": self.others,
            "total": self.total,
        }


class EnergyModel:
    """Maps simulation activity onto energy using :class:`EnergyParameters`."""

    def __init__(self, params: Optional[EnergyParameters] = None):
        self.params = params or EnergyParameters()

    def energy_terms(self, result: SimulationResult
                     ) -> List[Tuple[str, float]]:
        """The ordered ``(component, value)`` energy terms of one simulation.

        The list order is a *contract*: :meth:`compute` folds these terms
        left to right, one float addition per term, and every engine
        (execution-driven, fused, lanes, vector) reaches its breakdown
        through this same reduction.  Floating-point addition is not
        associative, so any engine that accumulated the same terms in a
        different order (per-epoch partial sums, ``np.sum`` pairwise
        reduction) could silently drift by an ULP — keeping the reduction
        explicit and shared is what keeps cross-engine identity checks exact
        equality instead of tolerance.
        """
        p = self.params
        mem = result.memory_stats
        hier = mem["hierarchy"]
        core = result.core_stats
        fu_counts = core.get("fu_op_counts", {})
        directory = mem.get("directory", {})
        dma = mem.get("dma", {})

        # --- CPU: pipeline structures, register files, ALUs, misspeculation ------
        n = result.instructions
        terms: List[Tuple[str, float]] = [
            ("cpu", n * (p.fetch_decode_per_inst + p.rename_dispatch_per_inst +
                         p.issue_window_per_inst + p.regfile_per_inst +
                         p.commit_per_inst)),
            ("cpu", fu_counts.get("int_alu", 0) * p.int_alu_per_op),
            ("cpu", fu_counts.get("fp_alu", 0) * p.fp_alu_per_op),
            ("cpu", fu_counts.get("load_store", 0) * p.lsq_per_mem_op),
            ("cpu", result.branch_predictions * p.branch_predictor_per_branch),
            ("cpu", result.mispredictions * p.squash_per_mispredict),
            ("cpu", hier["L1"]["misses"] * p.replay_per_l1_miss),

            # --- Caches ----------------------------------------------------------
            ("caches", hier["L1"]["accesses"] * p.l1_per_access),
            ("caches", hier["L1I"]["accesses"] * p.l1i_per_access),
            ("caches", hier["L2"]["accesses"] * p.l2_per_access),
            ("caches", hier["L3"]["accesses"] * p.l3_per_access),

            # --- Local memory ----------------------------------------------------
            ("lm", (mem.get("lm_accesses", 0) +
                    dma.get("words_transferred", 0)) * p.lm_per_access),

            # --- Directory -------------------------------------------------------
            ("directory", directory.get("lookups", 0) * p.directory_per_lookup),
            ("directory", directory.get("updates", 0) * p.directory_per_update),

            # --- Prefetcher ------------------------------------------------------
            ("prefetcher", hier.get("prefetches_issued", 0)
             * p.prefetcher_per_prefetch),
            ("prefetcher", hier["L1"]["demand_accesses"]
             * p.prefetcher_per_training),

            # --- DMA controller and bus ------------------------------------------
            ("dma", dma.get("lines_transferred", 0) * p.dma_per_line),
            ("dma", (dma.get("gets", 0) + dma.get("puts", 0))
             * p.dma_per_command),
            ("bus", hier.get("bus_transactions", 0) * p.bus_per_transaction),

            # --- DRAM (reported separately, excluded from the Fig. 10 total) -----
            ("dram", (hier.get("memory_reads", 0) +
                      hier.get("memory_writes", 0)) * p.dram_per_access),
        ]
        return terms

    def compute(self, result: SimulationResult) -> EnergyBreakdown:
        """Compute the energy breakdown of one simulation.

        A left-fold of :meth:`energy_terms` — the one accumulation order
        every engine shares (see the contract there).
        """
        breakdown = EnergyBreakdown()
        for component, value in self.energy_terms(result):
            setattr(breakdown, component, getattr(breakdown, component) + value)
        return breakdown
