"""Energy accounting from simulation activity counters.

:class:`EnergyModel` takes a :class:`~repro.cpu.core.SimulationResult` and
produces an :class:`EnergyBreakdown` with per-structure energies and the
four-way grouping of Figure 10 (CPU, Caches, LM, Others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.core import SimulationResult
from repro.energy.parameters import EnergyParameters


@dataclass
class EnergyBreakdown:
    """Per-component energy in nanojoules."""

    cpu: float = 0.0
    caches: float = 0.0
    lm: float = 0.0
    directory: float = 0.0
    prefetcher: float = 0.0
    dma: float = 0.0
    bus: float = 0.0
    dram: float = 0.0

    @property
    def others(self) -> float:
        """The "Others" group of Figure 10: prefetchers, DMAC, buses and the
        coherence directory."""
        return self.directory + self.prefetcher + self.dma + self.bus

    @property
    def total(self) -> float:
        """Total on-chip energy (DRAM excluded, as in Wattch)."""
        return self.cpu + self.caches + self.lm + self.others

    @property
    def total_with_dram(self) -> float:
        return self.total + self.dram

    def groups(self) -> Dict[str, float]:
        """The Figure 10 component grouping."""
        return {
            "CPU": self.cpu,
            "Caches": self.caches,
            "LM": self.lm,
            "Others": self.others,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu": self.cpu,
            "caches": self.caches,
            "lm": self.lm,
            "directory": self.directory,
            "prefetcher": self.prefetcher,
            "dma": self.dma,
            "bus": self.bus,
            "dram": self.dram,
            "others": self.others,
            "total": self.total,
        }


class EnergyModel:
    """Maps simulation activity onto energy using :class:`EnergyParameters`."""

    def __init__(self, params: Optional[EnergyParameters] = None):
        self.params = params or EnergyParameters()

    def compute(self, result: SimulationResult) -> EnergyBreakdown:
        """Compute the energy breakdown of one simulation."""
        p = self.params
        mem = result.memory_stats
        hier = mem["hierarchy"]
        core = result.core_stats
        fu_counts = core.get("fu_op_counts", {})
        breakdown = EnergyBreakdown()

        # --- CPU: pipeline structures, register files, ALUs, misspeculation ------
        n = result.instructions
        breakdown.cpu += n * (p.fetch_decode_per_inst + p.rename_dispatch_per_inst +
                              p.issue_window_per_inst + p.regfile_per_inst +
                              p.commit_per_inst)
        breakdown.cpu += fu_counts.get("int_alu", 0) * p.int_alu_per_op
        breakdown.cpu += fu_counts.get("fp_alu", 0) * p.fp_alu_per_op
        breakdown.cpu += fu_counts.get("load_store", 0) * p.lsq_per_mem_op
        breakdown.cpu += result.branch_predictions * p.branch_predictor_per_branch
        breakdown.cpu += result.mispredictions * p.squash_per_mispredict
        breakdown.cpu += hier["L1"]["misses"] * p.replay_per_l1_miss

        # --- Caches ----------------------------------------------------------------
        breakdown.caches += hier["L1"]["accesses"] * p.l1_per_access
        breakdown.caches += hier["L1I"]["accesses"] * p.l1i_per_access
        breakdown.caches += hier["L2"]["accesses"] * p.l2_per_access
        breakdown.caches += hier["L3"]["accesses"] * p.l3_per_access

        # --- Local memory ------------------------------------------------------------
        lm_accesses = mem.get("lm_accesses", 0)
        dma_words = mem.get("dma", {}).get("words_transferred", 0)
        breakdown.lm += (lm_accesses + dma_words) * p.lm_per_access

        # --- Directory ----------------------------------------------------------------
        directory = mem.get("directory", {})
        breakdown.directory += directory.get("lookups", 0) * p.directory_per_lookup
        breakdown.directory += directory.get("updates", 0) * p.directory_per_update

        # --- Prefetcher ----------------------------------------------------------------
        breakdown.prefetcher += hier.get("prefetches_issued", 0) * p.prefetcher_per_prefetch
        breakdown.prefetcher += hier["L1"]["demand_accesses"] * p.prefetcher_per_training

        # --- DMA controller and bus -------------------------------------------------------
        dma = mem.get("dma", {})
        breakdown.dma += dma.get("lines_transferred", 0) * p.dma_per_line
        breakdown.dma += (dma.get("gets", 0) + dma.get("puts", 0)) * p.dma_per_command
        breakdown.bus += hier.get("bus_transactions", 0) * p.bus_per_transaction

        # --- DRAM (reported separately, excluded from the Figure 10 total) -----------------
        breakdown.dram += (hier.get("memory_reads", 0) +
                           hier.get("memory_writes", 0)) * p.dram_per_access
        return breakdown
