"""Per-event energy parameters.

The values are loosely derived from CACTI 6.0 numbers for 45 nm SRAM arrays
of the Table 1 sizes and from the relative stage energies Wattch reports for
a 4-wide out-of-order core.  Absolute values are not the point: the paper's
energy conclusions are activity-driven (fewer cache accesses, fewer misses,
fewer prefetches, a cheap LM and a tiny directory CAM), and those relations
are what the defaults encode:

* an LM access is much cheaper than an L1 access of the same size because it
  has no tag array and no TLB lookup;
* the 32-entry directory CAM (0.348 ns at 45 nm per the paper) costs a small
  fraction of an L1 access;
* lower-level caches cost progressively more per access;
* a cache miss also costs pipeline energy (re-executed/replayed work), which
  is how the CPU component shrinks when the hybrid system removes misses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EnergyParameters:
    """Energy cost (in nanojoules) charged per event of each kind."""

    # --- core pipeline (per committed instruction) ---------------------------------
    fetch_decode_per_inst: float = 0.08
    rename_dispatch_per_inst: float = 0.06
    issue_window_per_inst: float = 0.08
    regfile_per_inst: float = 0.08
    commit_per_inst: float = 0.04
    int_alu_per_op: float = 0.08
    fp_alu_per_op: float = 0.18
    branch_predictor_per_branch: float = 0.05
    lsq_per_mem_op: float = 0.07
    #: Pipeline energy wasted per L1 demand miss (replays, scheduler pressure).
    replay_per_l1_miss: float = 0.80
    #: Pipeline energy wasted per branch misprediction (squashed work).
    squash_per_mispredict: float = 1.2

    # --- memory structures (per access) ---------------------------------------------
    l1_per_access: float = 0.18
    l1i_per_access: float = 0.10
    l2_per_access: float = 0.80
    l3_per_access: float = 2.20
    lm_per_access: float = 0.035
    directory_per_lookup: float = 0.012
    directory_per_update: float = 0.012
    prefetcher_per_training: float = 0.01
    prefetcher_per_prefetch: float = 0.02
    dma_per_line: float = 0.25
    dma_per_command: float = 0.50
    bus_per_transaction: float = 0.10
    dram_per_access: float = 4.0

    def copy_with(self, **kwargs) -> "EnergyParameters":
        data = self.__dict__.copy()
        data.update(kwargs)
        return EnergyParameters(**data)
