#!/usr/bin/env python
"""Machine-config ablation via trace replay (the record-once/re-time-often
workflow of `repro/trace`).

Captures one workload's dynamic stream during a single execution-driven run,
then re-times it under a sweep of machine configurations — cache sizes,
latencies, core width, prefetching — without ever re-running the execution
frontend.  For each point the replayed cycles are compared against a fresh
execution-driven simulation to show they are identical, along with the wall
time of both paths.  The v2 columnar trace encoding (per-PC delta streams,
varint/zig-zag, deflated sections) keeps even `medium`-scale streams small
enough to store, so the sweep is practical at every scale.

Run:  python examples/trace_replay_ablation.py [BENCHMARK] [SCALE]
      (default: CG tiny; try `CG medium` for the paper-scale sweep)
"""

import sys
import time

from repro.harness.config import PTLSIM_CONFIG
from repro.harness.experiments import MACHINE_ABLATION_POINTS
from repro.harness.runner import run_workload
from repro.trace import capture_workload, replay_trace


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"

    print(f"Capturing {name} (hybrid, scale={scale}) once...")
    start = time.perf_counter()
    baseline, trace = capture_workload(name, "hybrid", scale)
    capture_wall = time.perf_counter() - start
    v1_bytes = len(trace.to_bytes(schema=1))
    v2_bytes = len(trace.to_bytes())
    print(f"  {trace.instructions} instructions, {trace.branch_count} "
          f"branches, {trace.mem_count} memory ops recorded in "
          f"{capture_wall:.2f}s")
    print(f"  trace: {v2_bytes} bytes columnar v2 "
          f"({v1_bytes} as flat v1 -> {v1_bytes / v2_bytes:.1f}x smaller, "
          f"{v2_bytes / trace.instructions:.3f} bytes/instruction)\n")

    print(f"{'point':<14s} {'cycles':>12s} {'vs base':>8s} "
          f"{'replay':>8s} {'execute':>8s}  identical")
    print(f"{'baseline':<14s} {baseline.cycles:>12.0f} {'1.00x':>8s}")
    exec_total = replay_total = 0.0
    for label, overrides in MACHINE_ABLATION_POINTS:
        machine = PTLSIM_CONFIG.with_overrides(overrides)
        start = time.perf_counter()
        replayed = replay_trace(trace, machine)
        replay_wall = time.perf_counter() - start
        start = time.perf_counter()
        executed = run_workload(name, mode="hybrid", scale=scale,
                                machine=machine)
        exec_wall = time.perf_counter() - start
        exec_total += exec_wall
        replay_total += replay_wall
        print(f"{label:<14s} {replayed.cycles:>12.0f} "
              f"{replayed.cycles / baseline.cycles:>7.2f}x "
              f"{replay_wall:>7.2f}s {exec_wall:>7.2f}s  "
              f"{replayed.cycles == executed.cycles}")
    print(f"\nablation sweep: execution-driven {exec_total:.2f}s, "
          f"trace replay {replay_total:.2f}s "
          f"({exec_total / max(replay_total, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
