#!/usr/bin/env python
"""Quickstart: run one NAS-like kernel on the three machines the paper compares.

This exercises the whole stack end to end: the kernel is expressed in the
compiler IR, compiled three times (coherent hybrid memory system, incoherent
hybrid with an oracle compiler, cache-based baseline), executed on the
cycle-approximate out-of-order core, and the headline metrics of the paper
are printed: protocol overhead vs. the oracle, and speedup / energy reduction
vs. the cache-based system.

Run:  python examples/quickstart.py [BENCHMARK] [SCALE]
      (default: CG tiny)
"""

import sys

from repro import run_workload
from repro.harness.metrics import energy_reduction, overhead, speedup
from repro.harness import experiments, reporting


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"

    print(reporting.format_table1(experiments.table1()))
    print()
    print(f"Running {name} (scale={scale}) on the three systems...")

    hybrid = run_workload(name, mode="hybrid", scale=scale)
    oracle = run_workload(name, mode="hybrid-oracle", scale=scale)
    cache = run_workload(name, mode="cache", scale=scale)

    print()
    print(f"{'system':<18s} {'cycles':>12s} {'instructions':>14s} {'IPC':>6s} "
          f"{'AMAT':>6s} {'energy (nJ)':>12s}")
    for label, run in (("hybrid coherent", hybrid),
                       ("hybrid oracle", oracle),
                       ("cache-based", cache)):
        print(f"{label:<18s} {run.cycles:>12.0f} {run.instructions:>14d} "
              f"{run.sim.ipc:>6.2f} {run.sim.memory_stats['amat']:>6.2f} "
              f"{run.total_energy:>12.0f}")

    print()
    compiled = hybrid.compiled
    print(f"guarded references        : {compiled.guarded_references}/"
          f"{compiled.total_references} ({compiled.guarded_ratio:.0%})")
    print(f"directory lookups / hits  : "
          f"{hybrid.sim.memory_stats['directory']['lookups']} / "
          f"{hybrid.sim.memory_stats['directory']['hits']}")
    print(f"protocol time overhead    : {overhead(oracle, hybrid):+.2%} (vs. oracle)")
    print(f"speedup vs. cache-based   : {speedup(cache, hybrid):.2f}x")
    print(f"energy vs. cache-based    : {energy_reduction(cache, hybrid):+.1%} saved")


if __name__ == "__main__":
    main()
