#!/usr/bin/env python
"""Multicore scalability of the hybrid memory system (shared-uncore model).

Sweeps two parallel NAS kernels over 1 -> 2 -> 4 cores in both system modes
through the sweep engine: each multicore cell runs the domain-decomposed
kernel (each core streams its own shard through its private LM) against the
shared uncore, whose windowed bus arbitration makes concurrent demand
misses and DMA bursts contend.  The second pass resolves the same cells
through the trace subsystem (``replay=True``): every (workload, mode,
core-count) stream is captured once and re-timed, cycle- and
energy-identically — so machine ablations of the multicore enjoy the same
capture-once/replay-many amortisation as single-core sweeps.

Run:  python examples/multicore_scalability.py [--scale tiny]
"""

import argparse
import time

from repro.harness.experiments import scalability_sweep
from repro.harness.sweep import ResultStore


def print_points(points) -> None:
    print(f"{'Workload':<9s} {'Mode':<8s} {'Cores':>5s} {'Cycles':>12s} "
          f"{'Speedup':>8s} {'Effic.':>7s} {'Energy (nJ)':>12s}")
    print("-" * 66)
    for p in points:
        print(f"{p.workload:<9s} {p.mode:<8s} {p.num_cores:>5d} "
              f"{p.cycles:>12.0f} {p.speedup:>8.2f} {p.efficiency:>7.2f} "
              f"{p.energy:>12.0f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()
    store = ResultStore(args.cache_dir)

    start = time.perf_counter()
    executed = scalability_sweep(workloads=("CG", "SP"),
                                 modes=("hybrid", "cache"),
                                 core_counts=(1, 2, 4),
                                 scale=args.scale, store=store)
    exec_wall = time.perf_counter() - start
    print(f"\nExecution-driven scalability sweep ({args.scale}, "
          f"{exec_wall:.1f}s):\n")
    print_points(executed)

    start = time.perf_counter()
    replayed = scalability_sweep(workloads=("CG", "SP"),
                                 modes=("hybrid", "cache"),
                                 core_counts=(1, 2, 4),
                                 scale=args.scale, replay=True, store=store)
    replay_wall = time.perf_counter() - start
    identical = all(
        r.cycles == e.cycles and r.energy == e.energy
        for r, e in zip(replayed, executed))
    print(f"\nReplay-backed sweep ({replay_wall:.1f}s): "
          f"{'cycle- and energy-identical to execution' if identical else 'MISMATCH'}")

    hybrid4 = [p for p in executed if p.mode == "hybrid" and p.num_cores == 4]
    cache4 = [p for p in executed if p.mode == "cache" and p.num_cores == 4]
    print("\nAt 4 cores the shared bus is the limiter: hybrid speedups "
          f"{', '.join(f'{p.workload}={p.speedup:.2f}x' for p in hybrid4)} vs. "
          f"cache-based {', '.join(f'{p.workload}={p.speedup:.2f}x' for p in cache4)} "
          "(DMA bursts are bandwidth-hungry; the cache baseline's misses "
          "interleave more finely).")


if __name__ == "__main__":
    main()
