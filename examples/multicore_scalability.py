#!/usr/bin/env python
"""Multicore scalability of the hybrid memory system (shared-uncore model).

Sweeps two parallel NAS kernels over 1 -> 2 -> 4 cores in both system modes
through the sweep engine: each multicore cell runs the domain-decomposed
kernel (each core streams its own shard through its private LM) against the
shared uncore, whose windowed bus arbitration makes concurrent demand
misses and DMA bursts contend.  The second pass resolves the same cells
through the trace subsystem (``replay=True``): every (workload, mode,
core-count) stream is captured once and re-timed, cycle- and
energy-identically — so machine ablations of the multicore enjoy the same
capture-once/replay-many amortisation as single-core sweeps.

Run:  python examples/multicore_scalability.py [--scale tiny]
"""

import argparse
import time

from repro.harness.experiments import scalability_sweep
from repro.harness.sweep import ResultStore


def print_points(points) -> None:
    print(f"{'Workload':<9s} {'Mode':<8s} {'Cores':>5s} {'Cycles':>12s} "
          f"{'Speedup':>8s} {'Effic.':>7s} {'Energy (nJ)':>12s}")
    print("-" * 66)
    for p in points:
        print(f"{p.workload:<9s} {p.mode:<8s} {p.num_cores:>5d} "
              f"{p.cycles:>12.0f} {p.speedup:>8.2f} {p.efficiency:>7.2f} "
              f"{p.energy:>12.0f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--clusters", type=int, default=4,
                        help="cluster count of the many-core topology "
                             "section (default 4)")
    args = parser.parse_args()
    store = ResultStore(args.cache_dir)

    start = time.perf_counter()
    executed = scalability_sweep(workloads=("CG", "SP"),
                                 modes=("hybrid", "cache"),
                                 core_counts=(1, 2, 4),
                                 scale=args.scale, store=store)
    exec_wall = time.perf_counter() - start
    print(f"\nExecution-driven scalability sweep ({args.scale}, "
          f"{exec_wall:.1f}s):\n")
    print_points(executed)

    start = time.perf_counter()
    replayed = scalability_sweep(workloads=("CG", "SP"),
                                 modes=("hybrid", "cache"),
                                 core_counts=(1, 2, 4),
                                 scale=args.scale, replay=True, store=store)
    replay_wall = time.perf_counter() - start
    identical = all(
        r.cycles == e.cycles and r.energy == e.energy
        for r, e in zip(replayed, executed))
    print(f"\nReplay-backed sweep ({replay_wall:.1f}s): "
          f"{'cycle- and energy-identical to execution' if identical else 'MISMATCH'}")

    hybrid4 = [p for p in executed if p.mode == "hybrid" and p.num_cores == 4]
    cache4 = [p for p in executed if p.mode == "cache" and p.num_cores == 4]
    print("\nAt 4 cores the shared bus is the limiter: hybrid speedups "
          f"{', '.join(f'{p.workload}={p.speedup:.2f}x' for p in hybrid4)} vs. "
          f"cache-based {', '.join(f'{p.workload}={p.speedup:.2f}x' for p in cache4)} "
          "(DMA bursts are bandwidth-hungry; the cache baseline's misses "
          "interleave more finely).")

    # Many-core: the same sweep on the clustered hierarchical uncore
    # (per-cluster buses, home LLC slices, NUMA memory) against the flat
    # single bus, with the per-cluster occupancy that explains the gap.
    clusters = args.clusters
    many = tuple(sorted({clusters, 2 * clusters, 4 * clusters}))
    start = time.perf_counter()
    flat = scalability_sweep(workloads=("CG",), modes=("hybrid",),
                             core_counts=many, scale=args.scale, store=store)
    clustered = scalability_sweep(workloads=("CG",), modes=("hybrid",),
                                  core_counts=many, scale=args.scale,
                                  machine={"num_clusters": clusters},
                                  store=store)
    many_wall = time.perf_counter() - start
    print(f"\nMany-core topology: flat bus vs {clusters}-cluster uncore "
          f"(CG hybrid, {many_wall:.1f}s):\n")
    print(f"{'Cores':>5s} {'Flat cycles':>12s} {'Clust cycles':>13s} "
          f"{'Relief':>7s} {'Local':>8s} {'Remote':>7s}  Per-cluster bus lines")
    print("-" * 92)
    by_cores = {p.num_cores: p for p in clustered if p.num_cores > 1}
    for f in (p for p in flat if p.num_cores > 1):
        c = by_cores[f.num_cores]
        numa = c.uncore["numa"]
        lanes = ", ".join(f"c{i}={s['lines_requested']}"
                          for i, s in enumerate(c.uncore["clusters"]))
        print(f"{f.num_cores:>5d} {f.cycles:>12.0f} {c.cycles:>13.0f} "
              f"{f.cycles / c.cycles:>6.2f}x {numa['local_misses']:>8d} "
              f"{numa['remote_misses']:>7d}  [{lanes}]")
    print("\nEach cluster arbitrates its own bus window, so the aggregate "
          "bandwidth grows with the cluster count while remote (cross-"
          "cluster) misses pay the NUMA penalty — the flat bus's queue "
          "instead grows with every core added.")


if __name__ == "__main__":
    main()
