#!/usr/bin/env python
"""Why the coherence protocol is needed: the Figure 2/3 kernel of the paper.

The kernel streams two arrays (mapped to the local memory by the compiler)
and updates random elements of one of them through a pointer the compiler
cannot disambiguate.  Compiled four ways:

* ``cache``          — the reference semantics (everything through the caches);
* ``hybrid``         — the coherent hybrid memory system (guarded accesses +
                       double store); results must match the reference;
* ``hybrid-oracle``  — an incoherent hybrid whose compiler magically resolved
                       all aliasing (the overhead baseline of Figure 8);
* ``hybrid-naive``   — an incoherent hybrid that ignores the aliasing problem:
                       the pointer updates are silently lost, demonstrating
                       the incorrect execution the protocol prevents.

Run:  python examples/aliasing_kernel.py
"""

import numpy as np

from repro.compiler.ir import (
    AffineIndex,
    ArraySpec,
    Assign,
    BinOp,
    Const,
    IndirectIndex,
    Kernel,
    Load,
    Loop,
    ModuloIndex,
    PointerSpec,
    Ref,
)
from repro.harness.runner import run_kernel
from repro.isa.program import WORD_SIZE

N = 512


def build_kernel() -> Kernel:
    rng = np.random.default_rng(2012)
    kernel = Kernel("figure2")
    kernel.add_array(ArraySpec("a", N))
    kernel.add_array(ArraySpec("b", N, data=rng.random(N)))
    kernel.add_array(ArraySpec("c", N, mappable=False))
    kernel.add_array(ArraySpec("idx", N, data=rng.integers(0, N, N).astype(float)))
    kernel.add_pointer(PointerSpec("ptr", actual_target="a", declared_targets=None))
    loop = Loop("i", 0, N)
    # a[i] = b[i]              (regular accesses, mapped to LM buffers)
    loop.body.append(Assign(Ref("a", AffineIndex()), Load(Ref("b", AffineIndex()))))
    # c[random] = 0            (irregular access, provably no aliasing)
    loop.body.append(Assign(Ref("c", ModuloIndex(17, N)), Const(0.0)))
    # ptr[idx[i]] += 1         (potentially incoherent read + write)
    ptr_ref = Ref("ptr", IndirectIndex("idx"))
    loop.body.append(Assign(ptr_ref, BinOp("+", Load(ptr_ref), Const(1.0))))
    kernel.add_loop(loop)
    return kernel


def final_a(result) -> np.ndarray:
    decl = result.compiled.program.arrays["a"]
    return np.array([result.system.read_sm_word(decl.base + i * WORD_SIZE)
                     for i in range(N)])


def main() -> None:
    runs = {mode: run_kernel(build_kernel(), mode=mode)
            for mode in ("cache", "hybrid", "hybrid-oracle", "hybrid-naive")}
    reference = final_a(runs["cache"])

    print(f"{'mode':<16s} {'cycles':>10s} {'guarded':>8s} {'double st':>10s} "
          f"{'matches reference?':>20s}")
    for mode, run in runs.items():
        compiled = run.compiled
        double_stores = sum(1 for i in compiled.program.instructions
                            if i.collapse_with_prev)
        matches = np.allclose(final_a(run), reference)
        print(f"{mode:<16s} {run.cycles:>10.0f} "
              f"{compiled.static_guarded_instructions:>8d} {double_stores:>10d} "
              f"{str(matches):>20s}")

    print()
    wrong = int(np.sum(~np.isclose(final_a(runs['hybrid-naive']), reference)))
    print(f"The naive incoherent hybrid produced {wrong} wrong elements of 'a': "
          "the updates done through the pointer either landed on a stale SM copy "
          "or were overwritten by the LM write-back.")
    print("With the coherence protocol (guarded accesses + double store) the "
          "results are identical to the cache-based reference.")


if __name__ == "__main__":
    main()
