#!/usr/bin/env python
"""Multicore composition of the per-core coherence protocol (Section 3).

The protocol is per core: each core's directory keeps its own caches and its
own local memory coherent, and the only requirement on the software is the
usual data-distribution discipline of the parallel programming model — while
a core has a chunk mapped to its LM, other cores do not touch that chunk's
system-memory copy.  This example partitions an array across four cores
(OpenMP-style static scheduling), lets every core stream its partition
through its LM while performing guarded updates, and shows (1) that the
per-core protocol keeps every partition coherent and (2) that the ownership
checker flags a violating access from another core.

Run:  python examples/multicore_scratchpads.py
"""

from repro.core.multicore import MulticoreHybridSystem, OwnershipViolation

NUM_CORES = 4
CHUNK = 1024            # bytes mapped per core (one LM buffer)
ELEMS = CHUNK // 8


def main() -> None:
    machine = MulticoreHybridSystem(num_cores=NUM_CORES)
    array_base = 0x100_0000   # SM address of the shared array, chunk aligned

    # Every core configures its directory and maps its private partition.
    for core_id in range(NUM_CORES):
        machine.set_buffer_size(core_id, CHUNK)
        partition = array_base + core_id * CHUNK
        for i in range(ELEMS):
            machine.core(core_id).write_sm_word(partition + i * 8, float(core_id))
        machine.dma_get(core_id, machine.core(core_id).lm_virtual_base,
                        partition, CHUNK, now=0.0)

    # Each core updates its partition through guarded accesses (as compiler-
    # generated code would after failing to disambiguate a pointer).
    for core_id in range(NUM_CORES):
        partition = array_base + core_id * CHUNK
        for i in range(ELEMS):
            addr = partition + i * 8
            value = machine.load(core_id, addr, guarded=True, now=10_000.0).value
            machine.store(core_id, addr, value + 1.0, guarded=True, now=10_000.0)

    # Write the partitions back and check the result.
    ok = True
    for core_id in range(NUM_CORES):
        partition = array_base + core_id * CHUNK
        machine.dma_put(core_id, machine.core(core_id).lm_virtual_base,
                        partition, CHUNK, now=20_000.0)
        values = {machine.core(core_id).read_sm_word(partition + i * 8)
                  for i in range(ELEMS)}
        ok &= values == {core_id + 1.0}
        print(f"core {core_id}: partition values after write-back = {values} "
              f"(expected {{{core_id + 1.0}}})")
    print("all partitions coherent:", ok)

    # Re-map core 0's partition and show the ownership discipline being enforced.
    machine.dma_get(0, machine.core(0).lm_virtual_base, array_base, CHUNK, now=30_000.0)
    try:
        machine.load(1, array_base)
    except OwnershipViolation as exc:
        print("\nownership check caught a cross-core access, as required by the "
              "programming model:")
        print("  ", exc)

    for core_id in range(NUM_CORES):
        stats = machine.core(core_id).stats_summary()
        print(f"core {core_id}: directory lookups {stats['directory']['lookups']}, "
              f"hits {stats['directory']['hits']}, LM accesses {stats['lm_accesses']}")


if __name__ == "__main__":
    main()
