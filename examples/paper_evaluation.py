#!/usr/bin/env python
"""Regenerate the paper's full evaluation (Section 4) in one go.

Prints, in order: Table 1 (configuration), Table 2 (microbenchmark modes),
Figure 7 (microbenchmark overhead sweep), Figure 8 (protocol overhead on the
NAS-like benchmarks), Table 3 (memory-subsystem activity), Figure 9
(execution-time reduction) and Figure 10 (energy reduction).

Built on the sweep engine: every simulation cell is content-hashed and kept
in the on-disk result store, so a re-run at the same scale is served from
the cache in seconds, and a cold run can fan the cells out across worker
processes.

Run:  python examples/paper_evaluation.py [SCALE] [--workers N]
          [--cache-dir DIR] [--no-cache] [--replay]
      (default scale: tiny — use "small" for the figures quoted in
       EXPERIMENTS.md; expect a few minutes of cold simulation time)
"""

import argparse
import time

from repro.harness import experiments, reporting
from repro.harness.sweep import ResultStore, SweepContext
from repro.workloads import BENCHMARK_ORDER

#: Cells every figure/table below consumes: each benchmark in the coherent
#: hybrid, oracle-hybrid and cache-based machines.
EVAL_MODES = ("hybrid", "hybrid-oracle", "cache")

FIG7_PERCENTAGES = (0, 25, 50, 75, 100)
FIG7_ITERATIONS = 2000
FIG7_UNROLL = 20


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scale", nargs="?", default="tiny",
                        help="tiny (default) / small / medium")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for uncached cells")
    parser.add_argument("--cache-dir", default=None,
                        help="result-store directory (default $REPRO_CACHE_DIR "
                             "or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="simulate everything fresh, skip the store")
    parser.add_argument("--replay", action="store_true",
                        help="resolve kernel cells through the trace "
                             "subsystem (capture once per family, re-time "
                             "per machine config; cycle-identical and the "
                             "practical route to scale=medium figures)")
    args = parser.parse_args()

    store = None if args.no_cache else ResultStore(args.cache_dir)
    ctx = SweepContext(scale=args.scale, store=store, workers=args.workers,
                       replay=args.replay)
    start = time.time()

    # Resolve every kernel and microbenchmark cell up front in one sweep, so
    # misses run in parallel and the drivers below are pure cache hits.
    specs = [ctx.micro_spec("baseline", 0.0, FIG7_ITERATIONS, FIG7_UNROLL)]
    specs += [ctx.micro_spec(mode, pct / 100.0, FIG7_ITERATIONS, FIG7_UNROLL)
              for mode in ("RD", "WR", "RD/WR") for pct in FIG7_PERCENTAGES]
    ctx.run_specs(specs, echo=print)
    ctx.prefetch(BENCHMARK_ORDER, EVAL_MODES, echo=print)

    print(reporting.format_table1(experiments.table1()))
    print()
    print(reporting.format_table2(experiments.table2()))
    print()
    print(reporting.format_figure7(experiments.figure7(
        percentages=FIG7_PERCENTAGES, iterations=FIG7_ITERATIONS,
        unroll=FIG7_UNROLL, ctx=ctx)))
    print()
    print(reporting.format_figure8(experiments.figure8(ctx)))
    print()
    print(reporting.format_table3(experiments.table3(ctx)))
    print()
    print(reporting.format_figure9(experiments.figure9(ctx)))
    print()
    print(reporting.format_figure10(experiments.figure10(ctx)))
    print()
    summary = f"(scale={args.scale}, total time {time.time() - start:.1f}s"
    if store is not None:
        s = store.stats()
        summary += (f"; store {store.root}: {s['hits']} hit(s), "
                    f"{s['writes']} simulated")
    print(summary + ")")


if __name__ == "__main__":
    main()
