#!/usr/bin/env python
"""Regenerate the paper's full evaluation (Section 4) in one go.

Prints, in order: Table 1 (configuration), Table 2 (microbenchmark modes),
Figure 7 (microbenchmark overhead sweep), Figure 8 (protocol overhead on the
NAS-like benchmarks), Table 3 (memory-subsystem activity), Figure 9
(execution-time reduction) and Figure 10 (energy reduction).

Run:  python examples/paper_evaluation.py [SCALE]
      (default scale: tiny — use "small" for the figures quoted in
       EXPERIMENTS.md; expect a few minutes of simulation time)
"""

import sys
import time

from repro.harness import experiments, reporting
from repro.harness.runner import ExperimentContext


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    ctx = ExperimentContext(scale=scale)
    start = time.time()

    print(reporting.format_table1(experiments.table1()))
    print()
    print(reporting.format_table2(experiments.table2()))
    print()
    print(reporting.format_figure7(experiments.figure7(
        percentages=(0, 25, 50, 75, 100), iterations=2000)))
    print()
    print(reporting.format_figure8(experiments.figure8(ctx)))
    print()
    print(reporting.format_table3(experiments.table3(ctx)))
    print()
    print(reporting.format_figure9(experiments.figure9(ctx)))
    print()
    print(reporting.format_figure10(experiments.figure10(ctx)))
    print()
    print(f"(scale={scale}, total simulation time {time.time() - start:.0f}s)")


if __name__ == "__main__":
    main()
