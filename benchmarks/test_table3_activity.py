"""Table 3: activity in the memory subsystem, hybrid coherent vs. cache-based.

Paper shape: the hybrid system has fewer accesses to every cache level (the
strided accesses are served by the LM), a better AMAT, guarded references in
every benchmark except SP, and directory activity only in the hybrid system.
"""

from repro.harness import experiments, reporting


def test_table3_memory_subsystem_activity(benchmark, ctx):
    rows = benchmark.pedantic(experiments.table3, args=(ctx,), rounds=1, iterations=1)
    print()
    print(reporting.format_table3(rows))
    hybrid = {r.name: r for r in rows if r.mode == "Hybrid coherent"}
    cache = {r.name: r for r in rows if r.mode == "Cache-based"}
    for name in hybrid:
        # Only the hybrid system has LM and directory activity.
        assert hybrid[name].lm_accesses > 0
        assert cache[name].lm_accesses == 0
        assert cache[name].directory_accesses == 0
        # The hybrid system touches the L1 less: the streams live in the LM.
        assert hybrid[name].l1_accesses < cache[name].l1_accesses
    # SP has no guarded references; every other benchmark has some.
    assert hybrid["SP"].directory_accesses == 0
    assert hybrid["CG"].directory_accesses > 0
    # AMAT: the hybrid system is never worse on average across the suite.
    avg_h = sum(r.amat for r in hybrid.values()) / len(hybrid)
    avg_c = sum(r.amat for r in cache.values()) / len(cache)
    assert avg_h <= avg_c
