"""Shared helpers for the benchmark scripts.

Every ``bench_*.py`` follows the same report protocol: a JSON report at the
repository root that partial runs (``--encoding-only``, ``--vector-speedup``,
``--replay-speedup``) *merge into* rather than overwrite, and an exit code
that doubles as the CI perf/identity guard.  The load / merge-write / guard
pieces live here so the scripts stay about measurement.
"""

import json
from pathlib import Path

#: Repository root (this file lives in ``<root>/benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent


def default_report_path(name: str) -> Path:
    """``<repo root>/<name>`` — where CI expects the BENCH reports."""
    return REPO_ROOT / name


def load_report(path) -> dict:
    """The existing report at ``path``, or ``{}`` (missing / unparsable).

    Partial benchmark modes merge their section into this dict, so sections
    from other scales or earlier runs are never dropped.
    """
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    return report if isinstance(report, dict) else {}


def write_report(path, report: dict) -> None:
    """Write ``report`` as indented JSON (trailing newline) and say where."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {path}")


def guard_exit(ok: bool) -> int:
    """Exit code for a measurement that doubles as a CI guard."""
    return 0 if ok else 1


def profile_engines(trace, machine, engines=("fused", "vector")) -> dict:
    """Per-engine phase/counter profile of one replay (observability layer).

    Runs one *extra* recorded replay per engine — never the timed ones, so
    recording overhead cannot leak into the benchmark numbers — and returns
    the phase breakdown (calls, total/self seconds) plus the counters
    (cache hits/misses, C-kernel epochs, bounce reasons) per engine.
    """
    from repro import obs
    from repro.trace import replay_trace

    profile = {}
    for engine in engines:
        with obs.recording() as rec:
            replay_trace(trace, machine, engine=engine)
        snap = rec.snapshot()
        profile[engine] = {
            "phases": {
                name: {"calls": entry["calls"],
                       "total_seconds": round(entry["total"], 4),
                       "self_seconds": round(entry["self"], 4)}
                for name, entry in snap["phases"].items()},
            "counters": snap["counters"],
        }
    return profile
