"""Figure 8: overhead of the coherence protocol on the NAS-like benchmarks.

Compares the coherent hybrid memory system against the incoherent hybrid
with an oracle compiler.  Paper shape: zero execution-time overhead for CG,
EP, MG and SP (no double stores needed or the extra store issues in the same
cycle), small overheads for FT and IS (the double stores), and an energy
overhead of a few percent dominated by the directory lookups and the extra
stores.
"""

from repro.harness import experiments, reporting


def test_figure8_protocol_overhead(benchmark, ctx):
    rows = benchmark.pedantic(experiments.figure8, args=(ctx,), rounds=1, iterations=1)
    print()
    print(reporting.format_figure8(rows))
    by_name = {r.benchmark: r for r in rows}
    # Benchmarks without a double store show (near-)zero overhead.
    for name in ("CG", "MG", "SP"):
        assert abs(by_name[name].time_overhead) < 0.01
    # The double-store benchmarks pay something, but the protocol never costs
    # more than a few percent.
    avg = by_name["AVG"]
    assert avg.time_overhead < 0.05
    assert avg.energy_overhead < 0.08
    # FT and IS are the benchmarks where the double store shows up.
    assert by_name["FT"].time_overhead >= by_name["CG"].time_overhead
    assert by_name["IS"].energy_overhead >= by_name["MG"].energy_overhead
