"""Figure 9: execution-time reduction of the hybrid system vs. cache-based.

Paper shape: every benchmark except EP improves; the reductions come from
the work phase (strided accesses served by the LM, irregular data no longer
evicted), with the control and synchronisation phases adding a small amount
of extra work; the average speedup is 1.38x in the paper.
"""

from repro.harness import experiments, reporting


def test_figure9_execution_time_reduction(benchmark, ctx):
    rows = benchmark.pedantic(experiments.figure9, args=(ctx,), rounds=1, iterations=1)
    print()
    print(reporting.format_figure9(rows))
    by_name = {r.benchmark: r for r in rows}
    # The benchmarks the paper highlights as big winners (many strided
    # references -> prefetcher collisions and cache pollution) must win.
    for name in ("MG", "SP", "FT"):
        assert by_name[name].speedup > 1.1, name
    # The suite-average speedup is comparable to the paper's 1.38x
    # (scaled-down inputs: accept a broad band around it).
    assert by_name["AVG"].speedup > 1.1
    # Phase breakdown sanity: the work phase dominates hybrid execution.
    for name in ("CG", "FT", "MG", "SP"):
        row = by_name[name]
        assert row.work_fraction > row.control_fraction
        assert row.work_fraction > row.sync_fraction
