"""Table 1: the simulated machine configuration.

This harness does not measure performance; it regenerates the configuration
table from the live configuration objects so that any drift between the
documented machine and the simulated one is caught.
"""

from repro.harness import experiments, reporting


def test_table1_configuration(benchmark):
    rows = benchmark.pedantic(experiments.table1, rounds=1, iterations=1)
    print()
    print(reporting.format_table1(rows))
    names = dict(rows)
    assert names["L1 D-cache"].startswith("32 KB")
    assert names["Local memory"].startswith("32 KB")
    assert "IP-based stream prefetcher" in names["Prefetcher"]
