"""Shared fixtures for the benchmark harness.

All paper-evaluation benchmarks share one engine-backed
:class:`~repro.harness.sweep.SweepContext`, so each (workload, mode) cell is
simulated exactly once per session no matter how many tables/figures consume
it.  Environment knobs:

* ``REPRO_SCALE``      — ``tiny``/``small``/``medium`` (default ``small``);
* ``REPRO_CACHE_DIR``  — when set, cells are served from / written to the
  content-hashed result store at that path (used by CI to reuse results
  across jobs; unset by default so local runs always simulate fresh);
* ``REPRO_WORKERS``    — worker processes for uncached cells (default 1).
"""

import os

import pytest

from repro.harness.sweep import ResultStore, SweepContext


@pytest.fixture(scope="session")
def ctx():
    scale = os.environ.get("REPRO_SCALE", "small")
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    store = ResultStore(cache_dir) if cache_dir else None
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    return SweepContext(scale=scale, store=store, workers=workers)
