"""Shared fixtures for the benchmark harness.

All paper-evaluation benchmarks share one :class:`ExperimentContext` so each
(workload, mode) pair is simulated exactly once per session, no matter how
many tables/figures consume it.  Set ``REPRO_SCALE`` to ``tiny``/``small``/
``medium`` to trade fidelity for runtime (default ``small``).
"""

import os

import pytest

from repro.harness.runner import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    scale = os.environ.get("REPRO_SCALE", "small")
    return ExperimentContext(scale=scale)
