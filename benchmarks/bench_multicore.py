#!/usr/bin/env python
"""Benchmark the shared-uncore multicore timing model.

Measures the 1 -> 2 -> 4-core scalability of the domain-decomposed parallel
NAS kernels (hybrid vs. cache-based) through the sweep engine:

* speedup, parallel efficiency and energy per (workload, mode, core count)
  cell — the scalability figure of the multicore model;
* uncore contention at each core count (queueing delay, contended
  requests), showing *why* the memory-bound kernels scale sub-linearly;
* multicore trace capture -> replay identity at every core count (the
  acceptance gate), plus the wall-clock of replay-backed scalability
  sweeps vs. execution-driven ones.

Writes the numbers to ``BENCH_multicore.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_multicore.py [--scale small]
          [--workloads CG,SP] [--modes hybrid,cache] [--cores 1,2,4]
"""

import argparse
import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.harness.config import PTLSIM_CONFIG
from repro.harness.experiments import scalability_sweep
from repro.trace import capture_workload, parse_trace_bytes, replay_trace


def measure_scalability(workloads, modes, core_counts, scale: str) -> dict:
    """Execution-driven scalability sweep + per-cell uncore contention."""
    section = {"points": [], "by_workload": {}}
    points = scalability_sweep(workloads=workloads, modes=modes,
                               core_counts=core_counts, scale=scale)
    for p in points:
        entry = dataclasses.asdict(p)
        entry["speedup"] = round(p.speedup, 3)
        entry["efficiency"] = round(p.efficiency, 3)
        if p.uncore is not None:
            entry["uncore"] = {
                "queue_delay_cycles": p.uncore["queue_delay_cycles"],
                "contended_requests": p.uncore["contended_requests"],
                "requests": p.uncore["requests"],
            }
        section["points"].append(entry)
        print(f"scale   {p.workload:3s} {p.mode:7s} x{p.num_cores}: "
              f"{p.cycles:>12.0f} cycles, speedup {p.speedup:5.2f}, "
              f"efficiency {p.efficiency:5.2f}, energy {p.energy:.0f} nJ")
    for p in points:
        section["by_workload"].setdefault(p.workload, {}).setdefault(
            p.mode, {})[str(p.num_cores)] = {
                "cycles": p.cycles, "energy": p.energy,
                "speedup": round(p.speedup, 3)}
    return section


def measure_replay(workloads, core_counts, scale: str) -> dict:
    """Capture -> replay identity and replay-sweep wall-clock per core count."""
    section = {"identity": {}, "all_identical": True}
    for workload in workloads:
        for cores in core_counts:
            if cores == 1:
                continue
            machine = dataclasses.replace(PTLSIM_CONFIG, num_cores=cores)
            t0 = time.perf_counter()
            executed, mtrace = capture_workload(workload, "hybrid", scale,
                                                machine=machine)
            capture_s = time.perf_counter() - t0
            blob = mtrace.to_bytes()
            t0 = time.perf_counter()
            replayed = replay_trace(parse_trace_bytes(blob), machine)
            replay_s = time.perf_counter() - t0
            identical = (replayed.cycles == executed.cycles and
                         replayed.energy.as_dict() == executed.energy.as_dict())
            section["all_identical"] = section["all_identical"] and identical
            section["identity"][f"{workload}x{cores}"] = {
                "identical": identical,
                "trace_bytes": len(blob),
                "instructions": mtrace.instructions,
                "capture_seconds": round(capture_s, 3),
                "replay_seconds": round(replay_s, 3),
            }
            print(f"replay  {workload:3s} x{cores}: identical={identical}, "
                  f"{len(blob)} trace bytes, capture {capture_s:.2f}s, "
                  f"replay {replay_s:.2f}s")
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--workloads", default="CG,SP")
    parser.add_argument("--modes", default="hybrid,cache")
    parser.add_argument("--cores", default="1,2,4")
    parser.add_argument("--output", default=None,
                        help="report path (default: BENCH_multicore.json "
                             "at the repository root)")
    args = parser.parse_args()
    workloads = tuple(w.strip().upper() for w in args.workloads.split(","))
    modes = tuple(m.strip().lower() for m in args.modes.split(","))
    core_counts = tuple(int(c) for c in args.cores.split(","))

    report = {
        "description": "Shared-uncore multicore timing model: scalability "
                       "of the domain-decomposed parallel NAS kernels and "
                       "multicore trace capture/replay identity.",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "scale": args.scale,
        "core_counts": list(core_counts),
    }
    t0 = time.perf_counter()
    report["scalability"] = measure_scalability(workloads, modes, core_counts,
                                               args.scale)
    report["scalability"]["wall_seconds"] = round(time.perf_counter() - t0, 2)
    report["replay"] = measure_replay(workloads, core_counts, args.scale)

    out = Path(args.output) if args.output else \
        Path(__file__).resolve().parent.parent / "BENCH_multicore.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport written to {out}")
    return 0 if report["replay"]["all_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
