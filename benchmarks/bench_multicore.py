#!/usr/bin/env python
"""Benchmark the shared-uncore multicore timing model.

Measures the 1 -> 2 -> 4-core scalability of the domain-decomposed parallel
NAS kernels (hybrid vs. cache-based) through the sweep engine:

* speedup, parallel efficiency and energy per (workload, mode, core count)
  cell — the scalability figure of the multicore model;
* uncore contention at each core count (queueing delay, contended
  requests), showing *why* the memory-bound kernels scale sub-linearly;
* multicore trace capture -> replay identity at every core count (the
  acceptance gate), plus the wall-clock of replay-backed scalability
  sweeps vs. execution-driven ones.

Writes the numbers to ``BENCH_multicore.json`` at the repository root.
With ``--replay-speedup`` only the fused-replay-vs-execution timing section
is measured and *merged* into the existing report (the same pattern as
``bench_trace_replay --encoding-only``): per core count, one warm fused
replay against one execution-driven run, plus the 6-point machine-ablation
sweep at 2 cores — capture once, re-time six configs — which is the
headline ``replay_speedup`` acceptance number.  In that mode the exit code
doubles as a perf guard: non-zero unless every fused replay beats its
execution run (and replay stays cycle/energy-identical at the capture
config).

With ``--scaling-curve`` only the flat-vs-clustered hybrid scaling curve of
the first workload is measured and merged into the report (section
``scaling_curve``): the same core-count sweep on the flat single-bus
machine and on the clustered hierarchical uncore (``--clusters``, default
4).  The exit code is the many-core perf guard: non-zero unless the
clustered machine beats the flat bus at every >= 16-core cell and an
explicit ``num_clusters=1`` run stays cycle-identical to the flat machine.

Run:  PYTHONPATH=src python benchmarks/bench_multicore.py [--scale small]
          [--workloads CG,SP] [--modes hybrid,cache] [--cores 1,2,4]
      PYTHONPATH=src python benchmarks/bench_multicore.py --replay-speedup \
          [--workloads CG] [--cores 1,2,4] [--scale small]
      PYTHONPATH=src python benchmarks/bench_multicore.py --scaling-curve \
          [--workloads CG] [--cores 8,16,32] [--clusters 4] [--scale small]
"""

import argparse
import dataclasses
import platform
import time
from pathlib import Path

from _bench_util import (
    default_report_path,
    guard_exit,
    load_report,
    write_report,
)
from repro.harness.config import PTLSIM_CONFIG
from repro.harness.experiments import MACHINE_ABLATION_POINTS, scalability_sweep
from repro.harness.runner import run_workload
from repro.trace import capture_workload, parse_trace_bytes, replay_trace


def measure_scalability(workloads, modes, core_counts, scale: str) -> dict:
    """Execution-driven scalability sweep + per-cell uncore contention."""
    section = {"points": [], "by_workload": {}}
    points = scalability_sweep(workloads=workloads, modes=modes,
                               core_counts=core_counts, scale=scale)
    for p in points:
        entry = dataclasses.asdict(p)
        entry["speedup"] = round(p.speedup, 3)
        entry["efficiency"] = round(p.efficiency, 3)
        if p.uncore is not None:
            entry["uncore"] = {
                "queue_delay_cycles": p.uncore["queue_delay_cycles"],
                "contended_requests": p.uncore["contended_requests"],
                "requests": p.uncore["requests"],
            }
        section["points"].append(entry)
        print(f"scale   {p.workload:3s} {p.mode:7s} x{p.num_cores}: "
              f"{p.cycles:>12.0f} cycles, speedup {p.speedup:5.2f}, "
              f"efficiency {p.efficiency:5.2f}, energy {p.energy:.0f} nJ")
    for p in points:
        section["by_workload"].setdefault(p.workload, {}).setdefault(
            p.mode, {})[str(p.num_cores)] = {
                "cycles": p.cycles, "energy": p.energy,
                "speedup": round(p.speedup, 3)}
    return section


def measure_replay(workloads, modes, core_counts, scale: str) -> dict:
    """Capture -> replay identity per (workload, mode, core count) cell.

    The fused engine is compared against the execution-driven capture run
    (cycles and full energy breakdown); multicore cells additionally
    cross-check the fused engine against the legacy ``engine="lanes"``
    executor-driven replay — the acceptance identity matrix of the fused
    multicore engine.

    Returns ``(section, captured)`` where ``captured`` maps hybrid-mode
    ``(workload, cores)`` cells to their ``(executed, trace)`` pair so the
    speedup measurement can reuse them instead of re-capturing.
    """
    section = {"identity": {}, "all_identical": True}
    captured = {}
    for workload in workloads:
        for mode in modes:
            for cores in core_counts:
                machine = dataclasses.replace(PTLSIM_CONFIG, num_cores=cores)
                t0 = time.perf_counter()
                executed, mtrace = capture_workload(workload, mode, scale,
                                                    machine=machine)
                capture_s = time.perf_counter() - t0
                if mode == "hybrid":
                    captured[(workload, cores)] = (executed, mtrace)
                blob = mtrace.to_bytes()
                t0 = time.perf_counter()
                replayed = replay_trace(parse_trace_bytes(blob), machine)
                replay_s = time.perf_counter() - t0
                identical = (replayed.cycles == executed.cycles and
                             replayed.energy.as_dict() ==
                             executed.energy.as_dict())
                entry = {
                    "identical": identical,
                    "trace_bytes": len(blob),
                    "instructions": mtrace.instructions,
                    "capture_seconds": round(capture_s, 3),
                    "replay_seconds": round(replay_s, 3),
                }
                if cores > 1:
                    lanes = replay_trace(mtrace, machine, engine="lanes")
                    entry["fused_matches_lanes"] = (
                        lanes.cycles == replayed.cycles and
                        lanes.energy.as_dict() == replayed.energy.as_dict() and
                        lanes.sim.memory_stats == replayed.sim.memory_stats)
                    identical = identical and entry["fused_matches_lanes"]
                section["all_identical"] = (section["all_identical"]
                                            and identical)
                section["identity"][f"{workload}:{mode}x{cores}"] = entry
                print(f"replay  {workload:3s} {mode:7s} x{cores}: "
                      f"identical={identical}, {len(blob)} trace bytes, "
                      f"capture {capture_s:.2f}s, replay {replay_s:.2f}s")
    return section, captured


def measure_replay_speedup(workloads, core_counts, scale: str,
                           captured=None) -> dict:
    """Wall-clock of the fused multicore replay engine vs execution.

    Per (workload, core count): one execution-driven run against one warm
    fused replay of the same cell (the trace decode is cached, as it is in
    any real sweep).  Then the acceptance measurement — the 6-point
    machine-ablation sweep at 2 cores, execution-driven vs capture-once
    replay.  ``captured`` may carry ``(workload, cores) -> (executed,
    trace)`` pairs a prior :func:`measure_replay` already paid for (the
    full-report mode passes its own), sparing the duplicate captures.
    Returns the section dict; ``section["all_pass"]`` is True when every
    replay was identical at the capture config and faster than its
    execution twin.
    """
    captured = dict(captured or {})
    # Fixed to the hybrid machine (the paper's primary system); recorded in
    # the section so merged reports stay self-describing.
    section = {"scale": scale, "mode": "hybrid", "per_core_count": {},
               "all_pass": True}
    for workload in workloads:
        for cores in core_counts:
            machine = dataclasses.replace(PTLSIM_CONFIG, num_cores=cores)
            cell = captured.get((workload, cores))
            if cell is None:
                cell = capture_workload(workload, "hybrid", scale,
                                        machine=machine)
                # Only the ablation cell is read back below; dropping the
                # rest keeps large traces from accumulating across cells.
                if (workload, cores) == (workloads[0], 2):
                    captured[(workload, cores)] = cell
            executed, trace = cell
            replay_trace(trace, machine)                    # warm the caches
            t0 = time.perf_counter()
            replayed = replay_trace(trace, machine)
            replay_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            run_workload(workload, "hybrid", scale, machine=machine)
            execute_s = time.perf_counter() - t0
            identical = (replayed.cycles == executed.cycles and
                         replayed.energy.as_dict() == executed.energy.as_dict())
            speedup = execute_s / replay_s if replay_s > 0 else float("inf")
            section["all_pass"] &= identical and execute_s > replay_s
            section["per_core_count"].setdefault(str(cores), {})[workload] = {
                "execute_seconds": round(execute_s, 3),
                "replay_seconds": round(replay_s, 3),
                "speedup": round(speedup, 2),
                "identical": identical,
            }
            print(f"speedup {workload:3s} x{cores}: execute {execute_s:.2f}s, "
                  f"fused replay {replay_s:.2f}s -> {speedup:.1f}x, "
                  f"identical={identical}")

    # The acceptance number: the 2-core machine-ablation sweep, re-timed
    # from one capture vs executed point by point.
    workload = workloads[0]
    machine = dataclasses.replace(PTLSIM_CONFIG, num_cores=2)
    cell = captured.get((workload, 2))
    if cell is None:
        cell = capture_workload(workload, "hybrid", scale, machine=machine)
    trace = cell[1]
    points = [dict(overrides) for _, overrides in MACHINE_ABLATION_POINTS]
    t0 = time.perf_counter()
    for point in points:
        run_workload(workload, "hybrid", scale,
                     machine=machine.with_overrides(point))
    execute_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for point in points:
        replay_trace(trace, machine.with_overrides(point))
    replay_s = time.perf_counter() - t0
    speedup = execute_s / replay_s if replay_s > 0 else float("inf")
    section["ablation_sweep_2core"] = {
        "workload": workload,
        "points": len(points),
        "execute_seconds": round(execute_s, 3),
        "replay_seconds": round(replay_s, 3),
        "speedup": round(speedup, 2),
    }
    section["all_pass"] &= execute_s > replay_s
    print(f"speedup {workload:3s} x2 ablation sweep ({len(points)} points): "
          f"execute {execute_s:.2f}s, fused replay {replay_s:.2f}s "
          f"-> {speedup:.1f}x")
    return section


def measure_scaling_curve(workload: str, core_counts, scale: str,
                          num_clusters: int = 4) -> dict:
    """Flat vs clustered uncore scaling of one hybrid kernel.

    Runs the same core-count curve twice — on the flat single-bus machine
    and on the ``num_clusters``-cluster hierarchical uncore (per-cluster
    buses, home LLC slices, NUMA memory) — and records cycles, speedup and
    uncore contention per cell.  The guard (``all_pass``) requires:

    * the clustered machine beats the flat bus at every core count >= 16
      (where the single shared bus saturates);
    * an explicit ``num_clusters=1`` override stays cycle-identical to the
      flat machine (the bit-identity contract of the hierarchy refactor).
    """
    from repro.harness.runner import run_parallel_workload

    multicore_counts = [n for n in core_counts if n > 1]
    section = {"workload": workload, "scale": scale,
               "num_clusters": num_clusters,
               "flat": {}, "clustered": {}, "all_pass": True}
    for label, machine_overrides in (("flat", None),
                                     ("clustered",
                                      {"num_clusters": num_clusters})):
        points = scalability_sweep(workloads=(workload,), modes=("hybrid",),
                                   core_counts=core_counts, scale=scale,
                                   machine=machine_overrides)
        for p in points:
            entry = {"cycles": p.cycles, "speedup": round(p.speedup, 3),
                     "efficiency": round(p.efficiency, 3),
                     "energy": p.energy}
            if p.uncore is not None:
                entry["queue_delay_cycles"] = p.uncore["queue_delay_cycles"]
                entry["contended_requests"] = p.uncore["contended_requests"]
                numa = p.uncore.get("numa")
                if numa:
                    entry["local_misses"] = numa["local_misses"]
                    entry["remote_misses"] = numa["remote_misses"]
            section[label][str(p.num_cores)] = entry
            print(f"curve   {workload:3s} {label:9s} x{p.num_cores}: "
                  f"{p.cycles:>12.0f} cycles, speedup {p.speedup:5.2f}")
    wins = {}
    for n in multicore_counts:
        flat_c = section["flat"][str(n)]["cycles"]
        clus_c = section["clustered"][str(n)]["cycles"]
        wins[str(n)] = clus_c < flat_c
        if n >= 16:
            section["all_pass"] &= clus_c < flat_c
    section["clustered_wins"] = wins

    # Bit-identity guard: num_clusters=1 must take the flat-bus path.
    n = min(multicore_counts) if multicore_counts else 2
    flat_run = run_parallel_workload(workload, "hybrid", scale,
                                     num_cores=n)
    one_cluster = run_parallel_workload(
        workload, "hybrid", scale,
        machine=PTLSIM_CONFIG.with_overrides({"num_clusters": 1}),
        num_cores=n)
    identical = (one_cluster.cycles == flat_run.cycles and
                 one_cluster.energy.as_dict() == flat_run.energy.as_dict())
    section["one_cluster_identical_to_flat"] = identical
    section["all_pass"] &= identical
    print(f"curve   {workload:3s} num_clusters=1 x{n}: "
          f"identical to flat = {identical}")
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--workloads", default="CG,SP")
    parser.add_argument("--modes", default="hybrid,cache")
    parser.add_argument("--cores", default="1,2,4")
    parser.add_argument("--output", default=None,
                        help="report path (default: BENCH_multicore.json "
                             "at the repository root)")
    parser.add_argument("--replay-speedup", action="store_true",
                        help="measure only execute-vs-fused-replay timing "
                             "(hybrid mode; --modes is ignored) and merge "
                             "it into the existing report; exit non-zero "
                             "unless replay is identical and faster (CI "
                             "perf guard)")
    parser.add_argument("--scaling-curve", action="store_true",
                        help="measure only the flat-vs-clustered hybrid "
                             "scaling curve of the first workload and merge "
                             "it into the existing report; exit non-zero "
                             "unless the clustered uncore beats the flat "
                             "bus at >= 16 cores and num_clusters=1 stays "
                             "flat-identical (CI perf guard)")
    parser.add_argument("--clusters", type=int, default=4,
                        help="cluster count of the clustered curve "
                             "(default 4; must divide every --cores entry)")
    args = parser.parse_args()
    workloads = tuple(w.strip().upper() for w in args.workloads.split(","))
    modes = tuple(m.strip().lower() for m in args.modes.split(","))
    core_counts = tuple(int(c) for c in args.cores.split(","))

    out = Path(args.output) if args.output else \
        default_report_path("BENCH_multicore.json")

    if args.replay_speedup:
        report = load_report(out)
        section = measure_replay_speedup(workloads, core_counts, args.scale)
        report["replay_speedup"] = section
        write_report(out, report)
        return guard_exit(section["all_pass"])

    if args.scaling_curve:
        report = load_report(out)
        t0 = time.perf_counter()
        section = measure_scaling_curve(workloads[0], core_counts, args.scale,
                                        num_clusters=args.clusters)
        section["wall_seconds"] = round(time.perf_counter() - t0, 2)
        report["scaling_curve"] = section
        write_report(out, report)
        return guard_exit(section["all_pass"])

    report = {
        "description": "Shared-uncore multicore timing model: scalability "
                       "of the domain-decomposed parallel NAS kernels and "
                       "multicore trace capture/replay identity.",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "scale": args.scale,
        "core_counts": list(core_counts),
    }
    t0 = time.perf_counter()
    report["scalability"] = measure_scalability(workloads, modes, core_counts,
                                               args.scale)
    report["scalability"]["wall_seconds"] = round(time.perf_counter() - t0, 2)
    report["replay"], captured = measure_replay(workloads, modes, core_counts,
                                                args.scale)
    report["replay_speedup"] = measure_replay_speedup(
        workloads, core_counts, args.scale, captured=captured)
    write_report(out, report)
    ok = (report["replay"]["all_identical"]
          and report["replay_speedup"]["all_pass"])
    return guard_exit(ok)


if __name__ == "__main__":
    raise SystemExit(main())
