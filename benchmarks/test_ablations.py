"""Ablation benchmarks for the design choices called out in DESIGN.md.

* directory size (the paper fixes 32 entries to keep the CAM in-cycle);
* the stream prefetcher of the cache-based baseline (part of the paper's
  explanation for the hybrid system's advantage);
* the double store vs. a single guarded store (the cost of not being able to
  prove that aliased data will be written back).
"""

from repro.harness import experiments, reporting


def test_ablation_directory_size(benchmark):
    points = benchmark.pedantic(
        experiments.ablation_directory_size,
        kwargs=dict(workload="CG", scale="tiny", sizes=(4, 8, 16, 32, 64)),
        rounds=1, iterations=1)
    print()
    print(reporting.format_ablation("Ablation: directory size (CG)", points))
    cycles = [p.cycles for p in points]
    assert all(c > 0 for c in cycles)
    # 32 entries (the paper's choice) is already at the knee: doubling to 64
    # changes performance by less than 2%.
    assert abs(cycles[-1] - cycles[-2]) / cycles[-2] < 0.02


def test_ablation_prefetcher(benchmark):
    points = benchmark.pedantic(
        experiments.ablation_prefetcher,
        kwargs=dict(workload="MG", scale="tiny"),
        rounds=1, iterations=1)
    print()
    print(reporting.format_ablation("Ablation: cache-based prefetcher (MG)", points))
    on = next(p for p in points if p.label == "prefetcher on")
    off = next(p for p in points if p.label == "prefetcher off")
    # The prefetcher helps the cache-based baseline; the hybrid system's
    # advantage reported in Figure 9 is measured against the *stronger*
    # (prefetching) baseline.
    assert off.cycles >= on.cycles * 0.98


def test_ablation_double_store(benchmark):
    results = benchmark.pedantic(
        experiments.ablation_double_store, kwargs=dict(iterations=2000),
        rounds=1, iterations=1)
    print()
    print("Ablation: double store cost (microbenchmark cycles)")
    for mode, cycles in results.items():
        print(f"   {mode:10s} {cycles:12.0f}")
    # The double store (WR) costs more than a single guarded access (RD),
    # which in turn is essentially free relative to the baseline.
    assert results["WR"] >= results["RD"] * 0.99
    assert results["RD"] <= results["baseline"] * 1.08
