#!/usr/bin/env python
"""Benchmark the trace replay subsystem against execution-driven simulation.

Measures, for every NAS workload on the hybrid machine at scale=small:

* a 6-point machine-config ablation sweep run execution-driven (each point
  builds, compiles and simulates the workload from scratch);
* the same sweep run through trace replay (the dynamic stream is captured
  once, then re-timed under each machine config);
* cycle/energy identity of replay at the capture config for all NAS
  workloads x {hybrid, cache} (the acceptance gate).

Writes the numbers to ``BENCH_trace.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_trace_replay.py [--scale small]
"""

import argparse
import json
import platform
import time
from pathlib import Path

from repro.harness.config import PTLSIM_CONFIG
from repro.harness.runner import run_workload
from repro.trace import capture_workload, replay_trace
from repro.workloads import BENCHMARK_ORDER

#: The 6-point ablation: timing-only machine parameters (cache geometry,
#: latencies, core width/ROB, prefetching) — exactly the kind of sweep the
#: paper's sensitivity analysis re-runs the same dynamic stream under.
ABLATION_POINTS = [
    {"memory.l2_size": 128 * 1024},
    {"memory.l1_latency": 4},
    {"memory.memory_latency": 300},
    {"core.issue_width": 2},
    {"core.rob_size": 64},
    {"memory.prefetch_enabled": False},
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default: BENCH_trace.json "
                             "next to the repo root)")
    args = parser.parse_args()
    scale = args.scale
    machines = [PTLSIM_CONFIG.with_overrides(point)
                for point in ABLATION_POINTS]

    report = {
        "description": "6-point machine-config ablation sweep: "
                       "execution-driven vs trace replay",
        "scale": scale,
        "mode": "hybrid",
        "ablation_points": ABLATION_POINTS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
        "identity": {},
    }

    # -- capture (once per workload; also the identity baseline) ---------------
    traces = {}
    for workload in BENCHMARK_ORDER:
        for mode in ("hybrid", "cache"):
            start = time.perf_counter()
            executed, trace = capture_workload(workload, mode, scale)
            capture_wall = time.perf_counter() - start
            replayed = replay_trace(trace)
            identical = (
                replayed.cycles == executed.cycles and
                replayed.energy.as_dict() == executed.energy.as_dict() and
                replayed.sim.memory_stats == executed.sim.memory_stats and
                replayed.sim.core_stats == executed.sim.core_stats and
                replayed.sim.phase_cycles == executed.sim.phase_cycles)
            report["identity"][f"{workload}:{mode}"] = {
                "cycle_and_energy_identical": identical,
                "instructions": trace.instructions,
                "capture_seconds": round(capture_wall, 3),
                "trace_bytes": len(trace.to_bytes()),
            }
            print(f"capture {workload:3s} {mode:6s}: "
                  f"{trace.instructions:>8d} instr, {capture_wall:5.2f}s, "
                  f"identical={identical}")
            if mode == "hybrid":
                traces[workload] = trace
    if not all(v["cycle_and_energy_identical"]
               for v in report["identity"].values()):
        print("IDENTITY FAILURE — aborting benchmark")
        return 1

    # -- execution-driven ablation sweep ---------------------------------------
    total_exec = 0.0
    exec_seconds = {}
    for workload in BENCHMARK_ORDER:
        start = time.perf_counter()
        for machine in machines:
            run_workload(workload, mode="hybrid", scale=scale,
                         machine=machine)
        wall = time.perf_counter() - start
        exec_seconds[workload] = wall
        total_exec += wall
        print(f"execute {workload:3s}: 6-point sweep in {wall:6.2f}s")

    # -- replay ablation sweep (fresh per-point, shared decoded trace) ----------
    total_replay = 0.0
    for workload in BENCHMARK_ORDER:
        trace = traces[workload]
        start = time.perf_counter()
        for machine in machines:
            replay_trace(trace, machine)
        wall = time.perf_counter() - start
        total_replay += wall
        speedup = exec_seconds[workload] / wall
        report["workloads"][workload] = {
            "instructions": trace.instructions,
            "exec_sweep_seconds": round(exec_seconds[workload], 3),
            "replay_sweep_seconds": round(wall, 3),
            "speedup": round(speedup, 2),
        }
        print(f"replay  {workload:3s}: 6-point sweep in {wall:6.2f}s "
              f"({speedup:4.1f}x)")

    report["total"] = {
        "exec_sweep_seconds": round(total_exec, 3),
        "replay_sweep_seconds": round(total_replay, 3),
        "speedup": round(total_exec / total_replay, 2),
    }
    print(f"\nTOTAL: execution {total_exec:.2f}s, replay {total_replay:.2f}s "
          f"-> {total_exec / total_replay:.1f}x")

    out = Path(args.output) if args.output else \
        Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
