#!/usr/bin/env python
"""Benchmark the trace replay subsystem against execution-driven simulation.

Measures, for every NAS workload on the hybrid machine:

* a 6-point machine-config ablation sweep run execution-driven (each point
  builds, compiles and simulates the workload from scratch);
* the same sweep run through trace replay (the dynamic stream is captured
  once, then re-timed under each machine config);
* cycle/energy identity of replay at the capture config for all NAS
  workloads x {hybrid, cache} (the acceptance gate);
* the v1 (flat u64) vs v2 (columnar delta/varint) encoded size of every
  trace, including the replay-identity check after a v2 round-trip.

Writes the numbers to ``BENCH_trace.json`` at the repository root.  With
``--encoding-only`` just the encoding section is measured and *merged* into
the existing report (the timing sweeps are expensive; the encoding numbers
are what CI tracks per scale).  With ``--vector-speedup`` just the
vector-vs-fused multicore replay sweep is measured and merged, exiting
nonzero unless the vectorized engine is result-identical and >= 3x faster.
With ``--pass-speedup`` the same 6-point sweep is run cold (empty artifact
store, in-memory memos dropped before every point) and then warm (every
derivation pass served from the on-disk artifact cache), exiting nonzero
unless the warm sweep is result-identical, >= 2x faster, and actually hit
the disk tier (``*.disk.hit`` counters).

Every run also validates the merged report: a ``vector_speedup`` section
without its ``phase_profile`` (a report recorded before the observability
layer) fails the guard, so a stale BENCH_trace.json cannot ride through CI.

Run:  PYTHONPATH=src python benchmarks/bench_trace_replay.py [--scale small]
      PYTHONPATH=src python benchmarks/bench_trace_replay.py \
          --scale medium --encoding-only
      PYTHONPATH=src python benchmarks/bench_trace_replay.py \
          --scale medium --vector-speedup
      PYTHONPATH=src python benchmarks/bench_trace_replay.py \
          --scale medium --pass-speedup
"""

import argparse
import platform
import tempfile
import time
from pathlib import Path

from _bench_util import (
    default_report_path,
    guard_exit,
    load_report,
    profile_engines,
    write_report,
)
from repro.harness.config import PTLSIM_CONFIG
from repro.harness.experiments import MACHINE_ABLATION_POINTS
from repro.harness.runner import run_workload
from repro.trace import Trace, capture_workload, replay_trace
from repro.workloads import BENCHMARK_ORDER

#: The 6-point ablation: timing-only machine parameters (cache geometry,
#: latencies, core width/ROB, prefetching) — exactly the kind of sweep the
#: paper's sensitivity analysis re-runs the same dynamic stream under.
ABLATION_POINTS = [dict(overrides) for _, overrides in MACHINE_ABLATION_POINTS]


def measure_encoding(scale: str, report: dict, captured=None) -> bool:
    """Fill ``report["encoding"]`` for ``scale``; returns overall 3x pass.

    ``captured`` maps workload -> (executed, trace) for capture runs a
    caller already paid for (the full benchmark's identity loop); missing
    workloads are captured here.
    """
    captured = captured or {}
    section = report.setdefault("encoding", {})
    per_scale = section[scale] = {"workloads": {}}
    total_v1 = total_v2 = total_instr = 0
    all_identical = True
    for workload in BENCHMARK_ORDER:
        executed, trace = (captured.get(workload)
                           or capture_workload(workload, "hybrid", scale))
        v1 = len(trace.to_bytes(schema=1))
        v2_bytes = trace.to_bytes()
        v2 = len(v2_bytes)
        replayed = replay_trace(Trace.from_bytes(v2_bytes))
        identical = (replayed.cycles == executed.cycles and
                     replayed.energy.as_dict() == executed.energy.as_dict())
        all_identical = all_identical and identical
        total_v1 += v1
        total_v2 += v2
        total_instr += trace.instructions
        per_scale["workloads"][workload] = {
            "instructions": trace.instructions,
            "v1_bytes": v1,
            "v2_bytes": v2,
            "ratio": round(v1 / v2, 2),
            "v1_bytes_per_instruction": round(v1 / trace.instructions, 4),
            "v2_bytes_per_instruction": round(v2 / trace.instructions, 4),
            "v2_replay_identical": identical,
        }
        print(f"encode  {workload:3s} {scale}: v1={v1} v2={v2} "
              f"({v1 / v2:4.1f}x, {v2 / trace.instructions:.3f} B/instr, "
              f"identical={identical})")
    per_scale["total"] = {
        "instructions": total_instr,
        "v1_bytes": total_v1,
        "v2_bytes": total_v2,
        "ratio": round(total_v1 / total_v2, 2),
    }
    print(f"encode  ALL {scale}: {total_v1} -> {total_v2} bytes "
          f"({total_v1 / total_v2:.1f}x smaller)")
    return all_identical and total_v1 >= 3 * total_v2


def measure_vector_speedup(scale: str, report: dict, cores: int = 2,
                           workload: str = "CG") -> bool:
    """Fill ``report["vector_speedup"]`` for ``scale``; returns the gate.

    Times the 2-core 6-point machine-ablation replay sweep twice over one
    captured multicore trace — once with the fused engine, once with the
    vectorized epoch-batched engine — and checks per-point result identity
    (cycles, energy breakdown, phase cycles, memory stats).  The gate is
    identity at every point AND vector >= 3x faster than fused.
    """
    from repro.trace import artifacts

    machine = PTLSIM_CONFIG.with_overrides({"num_cores": cores})
    _, trace = capture_workload(workload, "hybrid", scale, machine=machine)
    machines = [machine.with_overrides(point) for point in ABLATION_POINTS]

    # The sweeps run with the artifact disk tier off: this benchmark
    # measures the *engine*.  A warm default store (e.g. from an earlier
    # bench run) would let the vector sweep skip its derivation passes
    # entirely, and a cold one would charge the vector sweep the artifact
    # encode/write cost — both effects are measure_pass_speedup's to
    # report, not this gate's.
    with artifacts.scoped(disabled=True):
        # Warm both engines once: the first replay pays the per-trace decode
        # and (for vector) the one-time C-kernel compile, not a sweep cost.
        replay_trace(trace, machines[0], engine="fused")
        replay_trace(trace, machines[0], engine="vector")

        start = time.perf_counter()
        fused_results = [replay_trace(trace, m, engine="fused")
                         for m in machines]
        fused_wall = time.perf_counter() - start
        start = time.perf_counter()
        vector_results = [replay_trace(trace, m, engine="vector")
                          for m in machines]
        vector_wall = time.perf_counter() - start
        # One extra recorded replay per engine (outside the timed sweeps):
        # where the wall-clock goes, per phase, and the engine's counters.
        phase_profile = profile_engines(trace, machines[0])

    identical = all(
        v.cycles == f.cycles and
        v.energy.as_dict() == f.energy.as_dict() and
        v.sim.phase_cycles == f.sim.phase_cycles and
        v.sim.memory_stats == f.sim.memory_stats
        for v, f in zip(vector_results, fused_results))
    speedup = fused_wall / vector_wall
    section = report.setdefault("vector_speedup", {})
    section[scale] = {
        "workload": workload,
        "cores": cores,
        "points": len(machines),
        "instructions": trace.instructions,
        "fused_sweep_seconds": round(fused_wall, 3),
        "vector_sweep_seconds": round(vector_wall, 3),
        "speedup": round(speedup, 2),
        "identical": identical,
        "phase_profile": phase_profile,
    }
    print(f"vector  {workload} {scale} {cores}-core: fused {fused_wall:.2f}s, "
          f"vector {vector_wall:.2f}s ({speedup:.1f}x, identical={identical})")
    return identical and speedup >= 3.0


def _forget_pass_memos():
    """Drop every in-memory pass memo so the next replay behaves like a
    fresh process: decode/oracle/flags/prelower go to disk or recompute."""
    import repro.trace.replay as replay_mod
    import repro.trace.vector as vector_mod
    vector_mod._ORACLE_CACHE.clear()
    vector_mod._FLAGS_CACHE.clear()
    vector_mod._VTAB_CACHE.clear()
    vector_mod._SEQ3_CACHE.clear()
    replay_mod._DECODE_CACHE.clear()


def measure_pass_speedup(scale: str, report: dict, cores: int = 2,
                         workload: str = "CG") -> bool:
    """Fill ``report["pass_speedup"]`` for ``scale``; returns the gate.

    Runs the 6-point machine-ablation vector replay sweep twice over one
    captured multicore trace, simulating a fresh process at every point
    (in-memory memos dropped): once **cold** against an empty artifact
    store (every pass computed, artifacts written) and once **warm**
    (every pass served from disk).  The gate is per-point result identity,
    warm >= 2x faster than cold, and recorded ``*.disk.hit`` counters
    proving the warm sweep actually read the disk tier.
    """
    from repro import obs
    from repro.trace import artifacts

    machine = PTLSIM_CONFIG.with_overrides({"num_cores": cores})
    _, trace = capture_workload(workload, "hybrid", scale, machine=machine)
    machines = [machine.with_overrides(point) for point in ABLATION_POINTS]
    # One-time C-kernel compile: not a per-process pass cost.
    replay_trace(trace, machines[0], engine="vector")

    with tempfile.TemporaryDirectory(prefix="repro-pass-bench-") as tmp:
        with artifacts.scoped(cache_root=tmp):
            start = time.perf_counter()
            cold_results = []
            for m in machines:
                _forget_pass_memos()
                cold_results.append(replay_trace(trace, m, engine="vector"))
            cold_wall = time.perf_counter() - start

            start = time.perf_counter()
            warm_results = []
            for m in machines:
                _forget_pass_memos()
                warm_results.append(replay_trace(trace, m, engine="vector"))
            warm_wall = time.perf_counter() - start

            # One extra recorded warm replay (outside the timed sweeps):
            # the counters prove the passes were served from disk.
            _forget_pass_memos()
            with obs.recording() as rec:
                replay_trace(trace, machines[0], engine="vector")
            counters = {k: v for k, v in sorted(rec.counters.items())
                        if ".disk." in k or k.endswith(".miss")}
        _forget_pass_memos()    # drop memos pinned to the temp store

    identical = all(
        w.cycles == c.cycles and
        w.energy.as_dict() == c.energy.as_dict() and
        w.sim.memory_stats == c.sim.memory_stats
        for w, c in zip(warm_results, cold_results))
    disk_hits = (counters.get("vector.oracle.disk.hit", 0) > 0 and
                 counters.get("vector.prelower.disk.hit", 0) > 0)
    speedup = cold_wall / warm_wall
    section = report.setdefault("pass_speedup", {})
    section[scale] = {
        "workload": workload,
        "cores": cores,
        "points": len(machines),
        "instructions": trace.instructions,
        "cold_sweep_seconds": round(cold_wall, 3),
        "warm_sweep_seconds": round(warm_wall, 3),
        "speedup": round(speedup, 2),
        "identical": identical,
        "warm_counters": counters,
    }
    print(f"passes  {workload} {scale} {cores}-core: cold {cold_wall:.2f}s, "
          f"warm {warm_wall:.2f}s ({speedup:.1f}x, identical={identical}, "
          f"disk_hits={disk_hits})")
    return identical and disk_hits and speedup >= 2.0


def vector_sections_complete(report: dict) -> bool:
    """Every recorded ``vector_speedup`` scale carries its phase profile.

    Reports recorded before the observability layer lack the key; the
    downstream tooling (and the CI artifact diff) assumes it, so a stale
    report is a guard failure, not a silent carry-over.
    """
    missing = [s for s, d in report.get("vector_speedup", {}).items()
               if "phase_profile" not in d]
    if missing:
        print("BENCH_trace.json vector_speedup section(s) missing "
              f"phase_profile: {', '.join(missing)} — re-record with "
              "--vector-speedup")
    return not missing


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument("--encoding-only", action="store_true",
                        help="measure only v1-vs-v2 encoded sizes and merge "
                             "them into the existing report")
    parser.add_argument("--vector-speedup", action="store_true",
                        help="measure only the vector-vs-fused multicore "
                             "replay sweep and merge it into the existing "
                             "report (exit 1 unless identical and >= 3x)")
    parser.add_argument("--pass-speedup", action="store_true",
                        help="measure only the cold-vs-warm artifact-cache "
                             "replay sweep and merge it into the existing "
                             "report (exit 1 unless identical, >= 2x, and "
                             "the warm passes hit the disk tier)")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default: BENCH_trace.json "
                             "next to the repo root)")
    args = parser.parse_args()
    scale = args.scale
    out = Path(args.output) if args.output else \
        default_report_path("BENCH_trace.json")

    if args.encoding_only or args.vector_speedup or args.pass_speedup:
        report = load_report(out)
        ok = True
        if args.encoding_only:
            ok = measure_encoding(scale, report) and ok
        if args.vector_speedup:
            ok = measure_vector_speedup(scale, report) and ok
        if args.pass_speedup:
            ok = measure_pass_speedup(scale, report) and ok
        ok = vector_sections_complete(report) and ok
        write_report(out, report)
        return guard_exit(ok)

    machines = [PTLSIM_CONFIG.with_overrides(point)
                for point in ABLATION_POINTS]
    previous = load_report(out)
    previous_encoding = previous.get("encoding", {})
    previous_vector = previous.get("vector_speedup", {})
    report = {
        "description": "6-point machine-config ablation sweep: "
                       "execution-driven vs trace replay",
        "scale": scale,
        "mode": "hybrid",
        "ablation_points": ABLATION_POINTS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
        "identity": {},
        # Encoding / vector-speedup sections from other scales are carried
        # over, so a full run at one scale never drops per-scale history.
        "encoding": previous_encoding,
        "vector_speedup": previous_vector,
    }

    # -- capture (once per workload; also the identity baseline) ---------------
    traces = {}
    captured_hybrid = {}
    for workload in BENCHMARK_ORDER:
        for mode in ("hybrid", "cache"):
            start = time.perf_counter()
            executed, trace = capture_workload(workload, mode, scale)
            if mode == "hybrid":
                captured_hybrid[workload] = (executed, trace)
            capture_wall = time.perf_counter() - start
            replayed = replay_trace(trace)
            identical = (
                replayed.cycles == executed.cycles and
                replayed.energy.as_dict() == executed.energy.as_dict() and
                replayed.sim.memory_stats == executed.sim.memory_stats and
                replayed.sim.core_stats == executed.sim.core_stats and
                replayed.sim.phase_cycles == executed.sim.phase_cycles)
            report["identity"][f"{workload}:{mode}"] = {
                "cycle_and_energy_identical": identical,
                "instructions": trace.instructions,
                "capture_seconds": round(capture_wall, 3),
                "trace_bytes": len(trace.to_bytes()),
                "trace_bytes_v1": len(trace.to_bytes(schema=1)),
            }
            print(f"capture {workload:3s} {mode:6s}: "
                  f"{trace.instructions:>8d} instr, {capture_wall:5.2f}s, "
                  f"identical={identical}")
            if mode == "hybrid":
                traces[workload] = trace
    if not all(v["cycle_and_energy_identical"]
               for v in report["identity"].values()):
        print("IDENTITY FAILURE — aborting benchmark")
        return 1

    # -- execution-driven ablation sweep ---------------------------------------
    total_exec = 0.0
    exec_seconds = {}
    for workload in BENCHMARK_ORDER:
        start = time.perf_counter()
        for machine in machines:
            run_workload(workload, mode="hybrid", scale=scale,
                         machine=machine)
        wall = time.perf_counter() - start
        exec_seconds[workload] = wall
        total_exec += wall
        print(f"execute {workload:3s}: 6-point sweep in {wall:6.2f}s")

    # -- replay ablation sweep (fresh per-point, shared decoded trace) ----------
    total_replay = 0.0
    for workload in BENCHMARK_ORDER:
        trace = traces[workload]
        start = time.perf_counter()
        for machine in machines:
            replay_trace(trace, machine)
        wall = time.perf_counter() - start
        total_replay += wall
        speedup = exec_seconds[workload] / wall
        report["workloads"][workload] = {
            "instructions": trace.instructions,
            "exec_sweep_seconds": round(exec_seconds[workload], 3),
            "replay_sweep_seconds": round(wall, 3),
            "speedup": round(speedup, 2),
        }
        print(f"replay  {workload:3s}: 6-point sweep in {wall:6.2f}s "
              f"({speedup:4.1f}x)")

    report["total"] = {
        "exec_sweep_seconds": round(total_exec, 3),
        "replay_sweep_seconds": round(total_replay, 3),
        "speedup": round(total_exec / total_replay, 2),
    }
    print(f"\nTOTAL: execution {total_exec:.2f}s, replay {total_replay:.2f}s "
          f"-> {total_exec / total_replay:.1f}x")

    measure_encoding(scale, report, captured=captured_hybrid)
    ok = vector_sections_complete(report)
    write_report(out, report)
    return guard_exit(ok)


if __name__ == "__main__":
    raise SystemExit(main())
