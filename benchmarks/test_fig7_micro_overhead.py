"""Figure 7: microbenchmark overhead vs. fraction of guarded instructions.

Paper shape: the RD mode shows no overhead at all (a guarded load costs one
directory lookup folded into address generation); the WR and RD/WR modes show
an overhead that grows linearly with the fraction of guarded stores (the
double store adds instructions), reaching ~28% at 100%.
"""

from repro.harness import experiments, reporting


def run_figure7():
    return experiments.figure7(percentages=(0, 25, 50, 75, 100),
                               iterations=3000, unroll=20)


def test_figure7_microbenchmark_overhead(benchmark):
    results = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    print()
    print(reporting.format_figure7(results))
    rd = [p.overhead for p in results["RD"]]
    wr = [p.overhead for p in results["WR"]]
    rdwr = [p.overhead for p in results["RD/WR"]]
    # RD mode: essentially free.
    assert max(rd) < 1.08
    # WR / RD-WR: overhead grows with the guarded fraction and is bounded by
    # the paper's worst case (~1.3x) plus slack.
    assert wr[-1] >= wr[0]
    assert rdwr[-1] >= rdwr[0]
    assert wr[-1] > 1.02
    assert wr[-1] < 1.45
