"""Table 2: the microbenchmark and its four modes.

Regenerates the static-code properties of each mode (which instructions are
guarded, where the double store appears) straight from the code generator.
"""

from repro.harness import experiments, reporting


def test_table2_microbenchmark_modes(benchmark):
    entries = benchmark.pedantic(experiments.table2, rounds=1, iterations=1)
    print()
    print(reporting.format_table2(entries))
    by_mode = {e.mode: e for e in entries}
    assert by_mode["baseline"].guarded_loads == 0
    assert by_mode["RD"].guarded_loads == 1
    assert by_mode["WR"].double_stores == 1
    assert by_mode["RD/WR"].guarded_loads == 1 and by_mode["RD/WR"].guarded_stores == 1
