"""Golden regression tests for the reproduction pipeline.

Pins the key metrics of every figure/table cell — cycles, instructions and
total energy per (workload, mode) — against checked-in golden JSON at
``scale="small"``.  The simulator is deterministic (inputs are seeded with a
stable hash, the pipeline model has no randomness), so any drift here is a
real behaviour change: either a bug, or an intentional model change that
must be acknowledged by regenerating the goldens.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_golden_regression.py -q

and commit the updated ``benchmarks/golden/small.json`` together with the
change that moved the numbers.
"""

import json
import os
from pathlib import Path

import pytest

from repro.workloads import BENCHMARK_ORDER

GOLDEN_PATH = Path(__file__).parent / "golden" / "small.json"
GOLDEN_MODES = ("hybrid", "hybrid-oracle", "cache")
#: Exact reproduction is expected; the tolerance only absorbs float printing.
RTOL = 1e-9


def current_metrics(ctx):
    metrics = {}
    for name in BENCHMARK_ORDER:
        for mode in GOLDEN_MODES:
            record = ctx.run(name, mode)
            metrics[f"{name}:{mode}"] = {
                "cycles": record.cycles,
                "instructions": record.instructions,
                "total_energy": record.total_energy,
            }
    return metrics


def test_golden_metrics(ctx):
    if ctx.scale != "small":
        pytest.skip(f"golden values are pinned at scale=small, not {ctx.scale}")
    metrics = current_metrics(ctx)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; regenerate with REPRO_REGEN_GOLDEN=1")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden) == sorted(metrics), "cell set changed; regenerate goldens"
    drifted = []
    for cell, expected in golden.items():
        got = metrics[cell]
        for key, value in expected.items():
            if got[key] != pytest.approx(value, rel=RTOL):
                drifted.append(f"{cell}.{key}: golden {value} != current {got[key]}")
    assert not drifted, "golden drift:\n  " + "\n  ".join(drifted)
