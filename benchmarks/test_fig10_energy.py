"""Figure 10: energy reduction of the hybrid system vs. cache-based.

Paper shape: every benchmark consumes less energy on the hybrid system
(12-41% less, 27% on average); the savings come from the cache hierarchy
(fewer accesses at every level) and from the CPU (fewer replayed
instructions after misses), while the LM and the DMA engine add only a few
percent each.
"""

from repro.harness import experiments, reporting


def test_figure10_energy_reduction(benchmark, ctx):
    rows = benchmark.pedantic(experiments.figure10, args=(ctx,), rounds=1, iterations=1)
    print()
    print(reporting.format_figure10(rows))
    by_name = {r.benchmark: r for r in rows}
    # The cache-energy component must shrink on the hybrid system for every
    # benchmark (it accesses every cache level less).
    for name in ("CG", "EP", "FT", "IS", "MG", "SP"):
        row = by_name[name]
        assert row.hybrid_groups["Caches"] <= row.cache_groups["Caches"] * 1.02, name
        # The LM and the protocol hardware stay cheap.
        assert row.hybrid_groups["LM"] < 0.15
        assert row.hybrid_groups["Others"] < 0.20
    # Averaged over the suite the hybrid system does not cost more energy.
    assert by_name["AVG"].energy_reduction > -0.02
